"""k-NN self-join over the moving-object population.

For every object ``p``, find its k nearest *other* objects.  This is the
"spatial join of moving objects" the paper lists as future work (§6), and
it is also the computational core of reverse k-NN monitoring: ``p`` is a
reverse k-NN of query ``q`` exactly when ``dist(p, q) <= dk(p)``, the
distance from ``p`` to its own k-th nearest neighbor.

The join runs against any :class:`~repro.engines.snapshot.SnapshotIndex`
backend (the Grid2D-backed :class:`~repro.core.object_index.ObjectIndex`
or the vectorized :class:`~repro.core.fast_index.CSRGrid`) and supports
the same overhaul/incremental duality as ordinary queries: the
incremental variant seeds each object's critical radius from its previous
neighbor set (§3.2 applied per object).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from ..engines.snapshot import (
    SnapshotIndex,
    make_snapshot,
    snapshot_knn,
    snapshot_knn_seeded,
)
from ..errors import ConfigurationError, NotEnoughObjectsError
from .answers import AnswerList


def _knn_excluding_self(
    index: SnapshotIndex, object_id: int, k: int
) -> AnswerList:
    """k-NN of an object among the *other* objects.

    Asks the index for ``k + 1`` neighbors (the object itself is at
    distance zero) and strips the object from the answer.  Exact ties at
    distance zero are handled by filtering on ID, not on distance.
    """
    qx, qy = index.position_of(object_id)
    raw = snapshot_knn(index, qx, qy, k + 1)
    answers = AnswerList(k)
    for d2, other_id in raw:
        if other_id != object_id:
            answers.offer(d2, other_id)
    return answers


def knn_self_join(index: SnapshotIndex, k: int) -> List[AnswerList]:
    """Overhaul k-NN self-join: each object's k nearest other objects."""
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    if index.n_objects < k + 1:
        raise NotEnoughObjectsError(k + 1, index.n_objects)
    return [
        _knn_excluding_self(index, object_id, k)
        for object_id in range(index.n_objects)
    ]


def knn_self_join_incremental(
    index: SnapshotIndex,
    k: int,
    previous: Sequence[Sequence[int]],
) -> List[AnswerList]:
    """Incremental k-NN self-join seeded from the previous neighbor sets.

    ``previous[p]`` is object ``p``'s neighbor-ID list from the last cycle;
    an empty or stale entry falls back to the overhaul path for that
    object.  Exactness follows §3.2: the circle around ``p`` through the
    new positions of its old neighbors still contains ``k`` other objects.
    """
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    n = index.n_objects
    if n < k + 1:
        raise NotEnoughObjectsError(k + 1, n)
    if len(previous) != n:
        raise ConfigurationError(
            f"previous has {len(previous)} entries for {n} objects"
        )
    out: List[AnswerList] = []
    for object_id in range(n):
        seeds = previous[object_id]
        if len(seeds) < k or any(not 0 <= s < n or s == object_id for s in seeds):
            out.append(_knn_excluding_self(index, object_id, k))
            continue
        qx, qy = index.position_of(object_id)
        raw = snapshot_knn_seeded(index, qx, qy, k + 1, list(seeds) + [object_id])
        answers = AnswerList(k)
        for d2, other_id in raw:
            if other_id != object_id:
                answers.offer(d2, other_id)
        if len(answers) < k:  # pragma: no cover - defensive
            answers = _knn_excluding_self(index, object_id, k)
        out.append(answers)
    return out


class SelfJoinMonitor:
    """Continuously maintain the k-NN self-join over moving objects.

    The monitor builds a fresh snapshot index per cycle (optimal cell
    size for the population) and keeps the previous neighbor sets so
    steady-state cycles run on the incremental path.  ``backend`` picks
    the :class:`~repro.engines.snapshot.SnapshotIndex` implementation
    (``"object_index"`` or ``"csr"``); answers are identical either way.
    """

    def __init__(
        self, k: int, incremental: bool = True, backend: str = "object_index"
    ) -> None:
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        self.k = k
        self.incremental = incremental
        self.backend = backend
        self._index: Optional[SnapshotIndex] = None
        self._previous: List[List[int]] = []

    @property
    def index(self) -> Optional[SnapshotIndex]:
        return self._index

    def tick(self, positions: np.ndarray) -> List[AnswerList]:
        """Process one snapshot; returns per-object neighbor lists."""
        positions = np.asarray(positions, dtype=np.float64)
        if self._index is not None and self._index.n_objects != len(positions):
            self._previous = []
        self._index = make_snapshot(positions, self.backend)
        if self.incremental and len(self._previous) == len(positions):
            answers = knn_self_join_incremental(self._index, self.k, self._previous)
        else:
            answers = knn_self_join(self._index, self.k)
        self._previous = [answer.object_ids() for answer in answers]
        return answers

    def kth_distances(self) -> List[float]:
        """Per-object distance to the k-th nearest other object (dk).

        Valid after :meth:`tick`; this is the quantity reverse-kNN
        monitoring filters on.
        """
        if not self._previous or self._index is None:
            raise ConfigurationError("tick() must run before kth_distances()")
        index = self._index
        out: List[float] = []
        for object_id, neighbor_ids in enumerate(self._previous):
            px, py = index.position_of(object_id)
            worst2 = 0.0
            for other_id in neighbor_ids:
                ox, oy = index.position_of(other_id)
                d2 = (ox - px) ** 2 + (oy - py) ** 2
                if d2 > worst2:
                    worst2 = d2
            out.append(math.sqrt(worst2))
        return out
