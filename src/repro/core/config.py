"""Typed per-method configuration behind the unified ``create()`` API.

One frozen dataclass per monitoring method holds every tunable that
method accepts after ``(k, queries)``.  The dataclasses are the single
source of truth for *which* keyword arguments exist: the
:meth:`MethodConfig.from_kwargs` constructor rejects unknown names with
a :class:`~repro.errors.ConfigurationError` that lists the valid fields,
so a typo like ``ncell=64`` fails loudly instead of being swallowed by a
``**kwargs`` sink.  Value validation (mode strings, ranges) stays where
it always was — in the engine constructors — so direct engine users get
the same errors as ``create()`` users.

:data:`METHOD_CONFIGS` maps public method names to their config classes;
:func:`make_engine` instantiates the engine for a config (with late
imports, since the engines import this module's neighbors).  Every
factory — :meth:`~repro.core.monitor.MonitoringSystem.create`,
:func:`repro.engines.registry.build_system`, the bench presets, and the
session layer's config dicts — resolves methods through this registry.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import ClassVar, Dict, Mapping, Optional, Tuple, Type, Union

from ..errors import ConfigurationError


@dataclass(frozen=True)
class MethodConfig:
    """Base class for per-method configuration blocks.

    Subclasses are frozen dataclasses whose fields are exactly the
    keyword arguments the method's factory accepts after ``(k, queries)``
    (minus the system-level ``tau``/``registry``, which belong to
    :class:`~repro.core.monitor.MonitoringSystem` itself).
    """

    #: Public method name, set per subclass (class attribute, not a field).
    method: ClassVar[str] = ""

    @classmethod
    def valid_fields(cls) -> Tuple[str, ...]:
        """Names of the accepted configuration fields, declaration order."""
        return tuple(f.name for f in fields(cls))

    @classmethod
    def from_kwargs(cls, **kwargs) -> "MethodConfig":
        """Build a config, rejecting unknown keys with the valid names."""
        valid = cls.valid_fields()
        unknown = sorted(set(kwargs) - set(valid))
        if unknown:
            raise ConfigurationError(
                f"unknown option(s) {', '.join(map(repr, unknown))} for method "
                f"{cls.method!r}; valid fields: {', '.join(valid) or '(none)'}"
            )
        return cls(**kwargs)

    def merged(self, **overrides) -> "MethodConfig":
        """A copy with ``overrides`` applied (unknown keys rejected)."""
        valid = self.valid_fields()
        unknown = sorted(set(overrides) - set(valid))
        if unknown:
            raise ConfigurationError(
                f"unknown option(s) {', '.join(map(repr, unknown))} for method "
                f"{self.method!r}; valid fields: {', '.join(valid) or '(none)'}"
            )
        return replace(self, **overrides) if overrides else self

    def to_dict(self) -> Dict[str, object]:
        """A plain-dict form that :meth:`from_dict` round-trips exactly.

        The ``"method"`` key carries the registry name, so the dict is
        self-describing — bench presets, CLI argument blobs, and the
        session layer all serialize through this one shape.
        """
        out: Dict[str, object] = {"method": self.method}
        for name in self.valid_fields():
            out[name] = getattr(self, name)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "MethodConfig":
        """Build a config from a plain dict, rejecting unknown keys.

        Called on :class:`MethodConfig` itself, the ``"method"`` key
        selects the concrete config class; called on a subclass the key
        is optional but must match.  Everything else goes through
        :meth:`from_kwargs`, so typos fail with the valid field names.
        """
        kwargs = dict(data)
        method = kwargs.pop("method", None)
        if cls is MethodConfig:
            if method is None:
                known = ", ".join(sorted(METHOD_CONFIGS))
                raise ConfigurationError(
                    f"config dict needs a 'method' key; known methods: {known}"
                )
            target = METHOD_CONFIGS.get(str(method))
            if target is None:
                known = ", ".join(sorted(METHOD_CONFIGS))
                raise ConfigurationError(
                    f"unknown method {method!r}; known: {known}"
                )
        else:
            target = cls
            if method is not None and method != cls.method:
                raise ConfigurationError(
                    f"config dict is for method {method!r}, not {cls.method!r}"
                )
        return target.from_kwargs(**kwargs)

    def _engine_kwargs(self) -> Dict[str, object]:
        return {name: getattr(self, name) for name in self.valid_fields()}


@dataclass(frozen=True)
class ObjectIndexingConfig(MethodConfig):
    """One-level grid Object-Indexing (paper §3.1/§3.2)."""

    method = "object_indexing"
    maintenance: str = "rebuild"
    answering: str = "overhaul"
    ncells: Optional[int] = None
    delta: Optional[float] = None


@dataclass(frozen=True)
class QueryIndexingConfig(MethodConfig):
    """Grid Query-Indexing (paper §3.3)."""

    method = "query_indexing"
    maintenance: str = "incremental"
    ncells: Optional[int] = None
    delta: Optional[float] = None


@dataclass(frozen=True)
class HierarchicalConfig(MethodConfig):
    """Hierarchical Object-Indexing (paper §4)."""

    method = "hierarchical"
    maintenance: str = "incremental"
    answering: str = "incremental"
    delta0: float = 0.1
    max_cell_load: int = 10
    split_factor: int = 3


@dataclass(frozen=True)
class RTreeConfig(MethodConfig):
    """R-tree baselines (paper §5.4)."""

    method = "rtree"
    maintenance: str = "overhaul"
    max_entries: int = 32


@dataclass(frozen=True)
class BruteForceConfig(MethodConfig):
    """Linear-scan oracle (testing ground truth)."""

    method = "brute_force"


@dataclass(frozen=True)
class FastGridConfig(MethodConfig):
    """Vectorized CSR grid engine (production fast path)."""

    method = "fast_grid"
    ncells: Optional[int] = None
    delta: Optional[float] = None


@dataclass(frozen=True)
class DeltaGridConfig(MethodConfig):
    """Incremental delta-CSR engine with dirty-region answer reuse."""

    method = "delta_grid"
    ncells: Optional[int] = None
    delta: Optional[float] = None
    patch_threshold: float = 0.3
    slack: float = 0.5
    reuse: bool = True


@dataclass(frozen=True)
class TPRConfig(MethodConfig):
    """Predictive TPR-tree engine (related-work baseline)."""

    method = "tpr"
    horizon: float = 10.0
    max_entries: int = 32
    tau: float = 1.0


@dataclass(frozen=True)
class ShardedConfig(MethodConfig):
    """Sharded parallel CSR engine (:mod:`repro.shard`)."""

    method = "sharded"
    workers: int = 2
    shards: Optional[int] = None
    seed_slack: float = 0.5
    task_timeout: float = 60.0
    heartbeat_every: int = 0
    oversubscribe: bool = False
    #: Re-cut stripe boundaries from live-population quantiles when the
    #: ``shard.imbalance_ratio`` gauge exceeds this (0 disables).
    rebalance_threshold: float = 0.0


#: Public method name -> config class; the single method registry.
METHOD_CONFIGS: Dict[str, Type[MethodConfig]] = {
    cfg.method: cfg
    for cfg in (
        ObjectIndexingConfig,
        QueryIndexingConfig,
        HierarchicalConfig,
        RTreeConfig,
        BruteForceConfig,
        FastGridConfig,
        DeltaGridConfig,
        TPRConfig,
        ShardedConfig,
    )
}


def resolve_config(
    method: str,
    config: Optional[Union[MethodConfig, Mapping[str, object]]] = None,
    overrides: Optional[Dict[str, object]] = None,
) -> MethodConfig:
    """The effective config for ``method``: defaults or ``config``, plus
    ``overrides``.  ``config`` may be a typed block or a plain mapping
    (routed through :meth:`MethodConfig.from_dict`; its ``"method"`` key,
    if present, must match).  Raises :class:`ConfigurationError` on an
    unknown method, a config of the wrong type, or unknown names."""
    cls = METHOD_CONFIGS.get(method)
    if cls is None:
        known = ", ".join(sorted(METHOD_CONFIGS))
        raise ConfigurationError(f"unknown method {method!r}; known: {known}")
    if config is None:
        return cls.from_kwargs(**(overrides or {}))
    if isinstance(config, Mapping):
        config = cls.from_dict(config)
    if not isinstance(config, cls):
        raise ConfigurationError(
            f"config for method {method!r} must be a {cls.__name__}, "
            f"got {type(config).__name__}"
        )
    return config.merged(**(overrides or {}))


def make_engine(config: MethodConfig, k: int, queries) -> "object":
    """Instantiate the engine a config describes.

    Backward-compatible alias of
    :func:`repro.engines.registry.make_engine` — the engine classes are
    resolved through the single dotted-path table in
    :data:`repro.engines.registry.ENGINE_PATHS` (late import: the engine
    modules import this module's neighbors).
    """
    from ..engines.registry import make_engine as registry_make_engine

    return registry_make_engine(config, k, queries)
