"""Streaming session layer: dynamic query/object lifecycle over engines.

The paper's monitoring model assumes queries and objects "can be
installed and removed at any time", but the engine layer fixes both
populations at construction.  :class:`~repro.service.session.MonitoringSession`
closes that gap: callers register and drop queries, join and leave
objects, and stream position updates between cycles; the session batches
the lifecycle calls into per-cycle admission sets and applies them
through the engines' ``apply_query_delta``/``apply_object_delta`` hooks
(:mod:`repro.engines.base`) — incrementally where the engine supports
it, by rebuild fallback everywhere else.

Public surface: :class:`MonitoringSession`, the stable
:class:`QueryHandle` it hands out, the :class:`AdmissionDeferred`
backpressure result, and :class:`SessionAnswer`.
"""

from .session import (
    AdmissionDeferred,
    MonitoringSession,
    QueryHandle,
    SessionAnswer,
)

__all__ = [
    "AdmissionDeferred",
    "MonitoringSession",
    "QueryHandle",
    "SessionAnswer",
]
