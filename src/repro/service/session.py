"""The streaming monitoring session: churn between cycles, cycles on demand.

:class:`MonitoringSession` wraps one
:class:`~repro.core.monitor.MonitoringSystem` and adds the lifecycle the
engine layer deliberately lacks: queries are registered and dropped, and
objects join and leave, at any point between cycles.  Lifecycle calls do
*not* touch the engine immediately — they accumulate in per-cycle
admission sets, and :meth:`MonitoringSession.tick` applies the whole
batch through the engine delta hooks
(:meth:`~repro.engines.base.BaseEngine.apply_query_delta` /
:meth:`~repro.engines.base.BaseEngine.apply_object_delta`) before
running the cycle.  Position *updates*, by contrast, stream freely —
they are the normal motion load and are never queued or capped.

**Handles vs rows.**  Engines address queries positionally (row ``i`` of
the query array) and objects by position-array row.  Both shift under
churn, so the session owns the stable names: a
:class:`QueryHandle` per registered query, and the caller's external
object id per joined object.  Internally it keeps a row-stable *object
universe* — a capacity-managed ``(cap, 2)`` array where each live object
holds a fixed row until it leaves and vacant rows carry the ``(-1, -1)``
sentinel.  Engines that support member mode
(:attr:`~repro.engines.base.BaseEngine.supports_member_idx`) index that
universe directly with the live rows as ``member_idx`` — joins and
leaves then reach their incremental structures as ordinary movers, and
the live rows being sorted makes their (distance, row-id) tie-break
order-isomorphic to a densely packed engine's (distance, dense-id) one,
which is what keeps churned answers bit-identical to a fresh rebuild.
Engines without member support get densely packed copies of the
survivors and rebuild on churned cycles.  When the vacant fraction of
the universe grows past 3/4 the session *compacts* — survivors are
repacked in row order, every row id changes, and the remap table is what
keeps reported answer IDs correct across the event (engines are told via
``ObjectDelta.compacted``).

**Backpressure.**  ``max_pending_deltas`` bounds the admission set; a
lifecycle call past the bound returns an explicit
:class:`AdmissionDeferred` (never an exception, never a silent drop) and
the caller retries after the next tick.

Every churn event is counted under the ``service.*`` namespace of the
system's metrics registry; see docs/api.md ("Sessions & churn").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from ..core.config import MethodConfig
from ..core.monitor import MonitoringSystem
from ..engines.registry import build_system
from ..errors import ConfigurationError, NotEnoughObjectsError
from ..obs.registry import MetricsRegistry
from ..state import QueryDelta, WorldStore


@dataclass(frozen=True)
class QueryHandle:
    """Stable name of one registered query, valid until dropped."""

    id: int


@dataclass(frozen=True)
class AdmissionDeferred:
    """A lifecycle call the session could not admit this cycle.

    Returned (not raised) when the pending admission set is at
    ``max_pending_deltas``.  Nothing was recorded: the caller holds the
    only copy of the request and retries after the next :meth:`tick`
    drains the set.
    """

    action: str  #: which call was deferred (``"register_query"``, ...)
    kind: str  #: ``"query"`` or ``"object"``
    pending: int  #: admission-set size at the time of the call
    limit: int  #: the session's ``max_pending_deltas``

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.action} deferred: {self.pending} pending deltas at the "
            f"admission limit of {self.limit}; retry after the next tick"
        )


@dataclass(frozen=True)
class SessionAnswer:
    """One query's exact k-NN answer in *external* names.

    ``neighbors`` holds ``(object_id, distance)`` pairs, nearest first,
    where ``object_id`` is the id the caller passed to
    :meth:`MonitoringSession.join_object` — engine-internal rows never
    leak out of the session.
    """

    handle: QueryHandle
    timestamp: float
    neighbors: Tuple[Tuple[int, float], ...] = field(default=())


def _as_point(point, what: str) -> Tuple[float, float]:
    arr = np.asarray(point, dtype=np.float64).reshape(-1)
    if arr.shape != (2,):
        raise ConfigurationError(f"{what} must be an (x, y) pair, got {point!r}")
    return float(arr[0]), float(arr[1])


class MonitoringSession:
    """Streaming facade over one monitoring system (see module docstring).

    Parameters
    ----------
    method:
        Registry method or benchmark preset name (anything
        :func:`~repro.engines.registry.build_system` accepts).  May be
        omitted when ``config`` is a dict carrying a ``"method"`` key or
        a typed :class:`~repro.core.config.MethodConfig`.
    k:
        Neighbors per query; fixed for the session (engines are
        single-``k``), so :meth:`register_query` validates against it.
    config:
        Typed config block or plain config dict — the same validated
        path as ``build_system``/bench presets.
    max_pending_deltas:
        Admission-set bound per cycle (``None`` = unbounded).  Lifecycle
        calls past it return :class:`AdmissionDeferred`.
    tau, registry, **options:
        Forwarded to :func:`~repro.engines.registry.build_system`.
    """

    def __init__(
        self,
        method: Optional[str] = None,
        *,
        k: int,
        config: Optional[Union[MethodConfig, Mapping[str, object]]] = None,
        tau: float = 1.0,
        registry: Optional[MetricsRegistry] = None,
        max_pending_deltas: Optional[int] = None,
        **options: object,
    ) -> None:
        if method is None:
            if isinstance(config, MethodConfig):
                method = config.method
            elif isinstance(config, Mapping) and "method" in config:
                method = str(config["method"])
            else:
                raise ConfigurationError(
                    "pass a method name or a config carrying one"
                )
        if max_pending_deltas is not None and max_pending_deltas < 1:
            raise ConfigurationError(
                f"max_pending_deltas must be >= 1, got {max_pending_deltas}"
            )
        self.max_pending_deltas = max_pending_deltas
        self.system: MonitoringSystem = build_system(
            method,
            k,
            np.empty((0, 2), dtype=np.float64),
            config=config,
            tau=tau,
            registry=registry,
            **options,
        )
        self._member_mode = bool(self.system.engine.supports_member_idx)
        self._started = False

        # Query side: handles in engine-row order (points live in the store).
        self._handles: List[QueryHandle] = []
        self._next_handle = 0
        self._pending_register: Dict[int, Tuple[float, float]] = {}
        self._pending_drop: Dict[int, None] = {}

        # Object side: the store owns the row-stable universe, the free
        # list and the external-id remap; the session only batches the
        # admission sets between ticks.
        self._store = WorldStore(registry=self.system.registry)
        self._pending_join: Dict[int, Tuple[float, float]] = {}
        self._pending_leave: Dict[int, None] = {}

        # Optional workload recorder (repro.verify): notified of every
        # admitted lifecycle call, position update, and tick.
        self._recorder: Optional[Any] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def k(self) -> int:
        return self.system.k

    @property
    def registry(self) -> MetricsRegistry:
        return self.system.registry

    @property
    def engine(self):
        return self.system.engine

    @property
    def store(self) -> WorldStore:
        """The world-state store backing this session (read-mostly)."""
        return self._store

    @property
    def n_live_objects(self) -> int:
        """Objects admitted and not yet left (pending deltas excluded)."""
        return self._store.n_live

    @property
    def n_active_queries(self) -> int:
        """Queries admitted and not yet dropped (pending excluded)."""
        return len(self._handles)

    @property
    def pending_deltas(self) -> int:
        """Lifecycle calls waiting for the next :meth:`tick`."""
        return (
            len(self._pending_register)
            + len(self._pending_drop)
            + len(self._pending_join)
            + len(self._pending_leave)
        )

    def handles(self) -> List[QueryHandle]:
        """Active query handles in engine-row order."""
        return list(self._handles)

    def attach_recorder(self, recorder) -> None:
        """Record this session's workload (see :mod:`repro.verify`).

        ``recorder`` is duck-typed: ``on_event(dict)`` receives every
        *admitted* lifecycle call and position update in call order
        (deferred or raising calls are never recorded), ``on_tick(answers)``
        each completed cycle's answers.  Replaying the recorded stream
        against a fresh session reproduces this run bit-identically.
        Pass ``None`` to detach.
        """
        self._recorder = recorder

    def _record(self, event: dict) -> None:
        if self._recorder is not None:
            self._recorder.on_event(event)

    def query_points(self) -> np.ndarray:
        """Active query positions, row-aligned with :meth:`handles`."""
        return self._store.queries.copy()

    def population(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(object_ids, positions)`` of the live population.

        Ordered by internal row — exactly the dense order a fresh engine
        built from the survivors would see, which is what the churn
        equivalence suite compares against.
        """
        rows = self._store.live_rows()
        return self._store.ext_ids(rows).copy(), self._store.read_rows(rows)

    # ------------------------------------------------------------------
    # Lifecycle calls (batched into the next cycle's admission set)
    # ------------------------------------------------------------------
    def _admission_full(self, action: str, kind: str):
        limit = self.max_pending_deltas
        if limit is not None and self.pending_deltas >= limit:
            self.registry.inc(
                "service.admission_deferred", labels={"kind": kind}
            )
            return AdmissionDeferred(action, kind, self.pending_deltas, limit)
        return None

    def register_query(
        self, point, k: Optional[int] = None
    ) -> Union[QueryHandle, AdmissionDeferred]:
        """Queue a query registration; admitted at the next :meth:`tick`.

        Returns its stable :class:`QueryHandle` — or
        :class:`AdmissionDeferred` when the admission set is full.  The
        session is single-``k``: passing a different ``k`` than the
        session's raises :class:`~repro.errors.ConfigurationError`.
        """
        if k is not None and int(k) != self.k:
            raise ConfigurationError(
                f"session answers k={self.k} queries; per-query k={k} is not "
                "supported — run a second session for a different k"
            )
        xy = _as_point(point, "query point")
        deferred = self._admission_full("register_query", "query")
        if deferred is not None:
            return deferred
        handle = QueryHandle(self._next_handle)
        self._next_handle += 1
        self._pending_register[handle.id] = xy
        self._record({"t": "reg", "hid": handle.id, "xy": [xy[0], xy[1]]})
        return handle

    def drop_query(self, handle: QueryHandle) -> Optional[AdmissionDeferred]:
        """Queue a query drop.  Dropping a not-yet-admitted registration
        cancels it outright (and frees its admission slot)."""
        hid = handle.id if isinstance(handle, QueryHandle) else int(handle)
        if hid in self._pending_register:
            del self._pending_register[hid]
            self._record({"t": "drop", "hid": hid})
            return None
        if hid in self._pending_drop:
            raise ConfigurationError(f"query handle {hid} is already dropping")
        if not any(h.id == hid for h in self._handles):
            raise ConfigurationError(f"unknown query handle {hid}")
        deferred = self._admission_full("drop_query", "query")
        if deferred is not None:
            return deferred
        self._pending_drop[hid] = None
        self._record({"t": "drop", "hid": hid})
        return None

    def join_object(self, object_id: int, point) -> Optional[AdmissionDeferred]:
        """Queue an object join under the caller's stable ``object_id``.

        Re-joining an id whose leave is still pending cancels the leave
        and moves the object — the net effect of leave+join in one
        admission window.  Joining an id that is live (or already
        joining) is a :class:`~repro.errors.ConfigurationError`.
        """
        oid = int(object_id)
        xy = _as_point(point, "object point")
        if oid in self._pending_leave:
            del self._pending_leave[oid]
            row = self._store.row_of(oid)
            assert row is not None
            self._store.write_row(row, *xy)
            self._record({"t": "join", "oid": oid, "xy": [xy[0], xy[1]]})
            return None
        if oid in self._pending_join or self._store.contains(oid):
            raise ConfigurationError(f"object {oid} is already present")
        deferred = self._admission_full("join_object", "object")
        if deferred is not None:
            return deferred
        self._pending_join[oid] = xy
        self._record({"t": "join", "oid": oid, "xy": [xy[0], xy[1]]})
        return None

    def leave_object(self, object_id: int) -> Optional[AdmissionDeferred]:
        """Queue an object leave.  Leaving a not-yet-admitted join cancels
        it outright."""
        oid = int(object_id)
        if oid in self._pending_join:
            del self._pending_join[oid]
            self._record({"t": "leave", "oid": oid})
            return None
        if oid in self._pending_leave:
            raise ConfigurationError(f"object {oid} is already leaving")
        if not self._store.contains(oid):
            raise ConfigurationError(f"unknown object {oid}")
        deferred = self._admission_full("leave_object", "object")
        if deferred is not None:
            return deferred
        self._pending_leave[oid] = None
        self._record({"t": "leave", "oid": oid})
        return None

    # ------------------------------------------------------------------
    # Position updates (streaming, never queued or capped)
    # ------------------------------------------------------------------
    def move_object(self, object_id: int, point) -> None:
        """Update one object's position (effective at the next snapshot)."""
        oid = int(object_id)
        xy = _as_point(point, "object point")
        if oid in self._pending_join:
            self._pending_join[oid] = xy
            self._record({"t": "move", "oids": [oid], "xy": [[xy[0], xy[1]]]})
            return
        row = self._store.row_of(oid)
        if row is None:
            raise ConfigurationError(f"unknown object {oid}")
        self._store.write_row(row, *xy)
        self._record({"t": "move", "oids": [oid], "xy": [[xy[0], xy[1]]]})

    def update_positions(
        self, points: np.ndarray, object_ids: Optional[np.ndarray] = None
    ) -> None:
        """Bulk position update — the vectorized streaming motion path.

        Without ``object_ids``, ``points`` must cover the whole live
        population in :meth:`population` order.  With ``object_ids`` it
        updates exactly those objects — live or pending admission, same
        as :meth:`move_object` (a pending join's admission point is
        updated in place).
        """
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != 2:
            raise ConfigurationError("points must be an (N, 2) array")
        if object_ids is None:
            rows = self._store.live_rows()
            if len(points) != len(rows):
                raise ConfigurationError(
                    f"expected positions for all {len(rows)} live objects, "
                    f"got {len(points)}"
                )
            live_points = points
        else:
            object_ids = np.asarray(object_ids)
            if len(object_ids) != len(points):
                raise ConfigurationError("object_ids and points length mismatch")
            live_ids, live_points = object_ids, points
            if self._pending_join:
                pending = np.fromiter(
                    (int(o) in self._pending_join for o in object_ids),
                    dtype=bool,
                    count=len(object_ids),
                )
                if pending.any():
                    for oid, xy in zip(
                        object_ids[pending].tolist(), points[pending]
                    ):
                        self._pending_join[int(oid)] = (
                            float(xy[0]),
                            float(xy[1]),
                        )
                    live_ids = object_ids[~pending]
                    live_points = points[~pending]
            try:
                rows = self._store.rows_of(live_ids)
            except KeyError as exc:
                raise ConfigurationError(f"unknown object {exc.args[0]}") from None
        self._store.write_rows(rows, live_points)
        if self._recorder is not None:
            oids = (
                self._store.ext_ids(rows)
                if object_ids is None
                else np.asarray(object_ids)
            )
            self._recorder.on_event(
                {
                    "t": "move",
                    "oids": [int(o) for o in oids],
                    "xy": points.tolist(),
                }
            )

    # ------------------------------------------------------------------
    # The cycle
    # ------------------------------------------------------------------
    def tick(self) -> Dict[QueryHandle, SessionAnswer]:
        """Admit the pending deltas, run one cycle, answer by handle.

        Raises :class:`~repro.errors.NotEnoughObjectsError` — *before*
        admitting anything, so the admission set survives for a retry —
        when the post-admission population would hold fewer than ``k``
        objects.
        """
        store = self._store
        projected = (
            store.n_live + len(self._pending_join) - len(self._pending_leave)
        )
        if projected < self.k:
            raise NotEnoughObjectsError(self.k, projected)

        metrics = self.registry
        churned = self.pending_deltas > 0
        copies_before = store.full_copies
        self._admit_queries(metrics)
        self._admit_objects(metrics)

        # Publish the staging epoch and hand the engine the read-only
        # view — member engines see the whole row universe, dense ones
        # the packed survivors (zero-copy while the universe has no
        # holes).  No layer copies the position array on this path.
        snap = store.publish()
        positions = snap if self._member_mode else store.packed(snap)

        if self._started:
            raw = self.system.tick(positions)
        else:
            raw = self.system.load(positions)
            self._started = True

        metrics.inc("service.cycles")
        if churned:
            metrics.inc("service.churn_cycles")
        if metrics.enabled:
            metrics.set_gauge("service.live_objects", store.n_live)
            metrics.set_gauge("service.active_queries", len(self._handles))
            metrics.set_gauge("service.universe_rows", store.capacity)
            metrics.set_gauge("service.free_rows", store.capacity - store.n_live)
            metrics.set_gauge("service.pending_deltas", self.pending_deltas)
            metrics.set_gauge(
                "state.copies_per_cycle", float(store.full_copies - copies_before)
            )

        # One gather over the flattened neighbor ids beats per-neighbor
        # numpy scalar indexing by ~3x at NQ in the hundreds.
        if self._member_mode:
            trans = store.ext_table()
        else:
            trans = store.ext_ids(store.live_rows())
        flat = [oid for qa in raw for oid, _ in qa.neighbors]
        ext_ids = trans[flat].tolist() if flat else []
        out: Dict[QueryHandle, SessionAnswer] = {}
        pos = 0
        for row, qa in enumerate(raw):
            handle = self._handles[row]
            end = pos + len(qa.neighbors)
            neighbors = tuple(
                zip(ext_ids[pos:end], (dist for _, dist in qa.neighbors))
            )
            pos = end
            out[handle] = SessionAnswer(handle, qa.timestamp, neighbors)
        if self._recorder is not None:
            self._recorder.on_tick(out)
        return out

    def _admit_queries(self, metrics: MetricsRegistry) -> None:
        if not self._pending_register and not self._pending_drop:
            return
        drops = self._pending_drop
        kept_rows = [
            row for row, h in enumerate(self._handles) if h.id not in drops
        ]
        new_handles = [self._handles[row] for row in kept_rows]
        new_handles.extend(QueryHandle(hid) for hid in self._pending_register)
        kept = np.full(len(new_handles), -1, dtype=np.intp)
        kept[: len(kept_rows)] = kept_rows
        parts = [self._store.queries[kept_rows]]
        if self._pending_register:
            parts.append(
                np.asarray(
                    list(self._pending_register.values()), dtype=np.float64
                )
            )
        queries = np.concatenate(parts)
        delta = QueryDelta(queries=queries, kept=kept)
        self.system.engine.apply_query_delta(delta)
        metrics.inc("service.queries_registered", len(self._pending_register))
        metrics.inc("service.queries_dropped", len(drops))
        self._handles = new_handles
        self._store.set_queries(queries)
        self._pending_register = {}
        self._pending_drop = {}

    def _admit_objects(self, metrics: MetricsRegistry) -> None:
        delta = self._store.admit(
            self._pending_join,
            self._pending_leave,
            member_mode=self._member_mode,
        )
        metrics.inc("service.objects_joined", len(delta.joined))
        metrics.inc("service.objects_left", len(delta.left))
        if delta.compacted:
            metrics.inc("service.compactions")
        self._pending_join = {}
        self._pending_leave = {}
        self.system.engine.apply_object_delta(delta)

    # ------------------------------------------------------------------
    # Resource management
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release engine-held OS resources (idempotent)."""
        self.system.close()

    def __enter__(self) -> "MonitoringSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
