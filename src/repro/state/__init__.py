"""The world-state plane: one epoch-versioned store behind every layer.

:class:`WorldStore` owns the columnar world state (positions,
membership, external-id remap, query set); :class:`WorldSnapshot` is
the read-only zero-copy view one ``publish()`` hands to every consumer.
See DESIGN.md §11 for the ownership diagram and epoch lifecycle.
"""

from .snapshot import (
    ObjectDelta,
    PositionsLike,
    QueryDelta,
    WorldSnapshot,
    as_world_snapshot,
)
from .store import WorldStore

__all__ = [
    "ObjectDelta",
    "PositionsLike",
    "QueryDelta",
    "WorldSnapshot",
    "WorldStore",
    "as_world_snapshot",
]
