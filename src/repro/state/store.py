"""The epoch-versioned columnar world store.

One :class:`WorldStore` owns everything the paper's §3 system model
calls world state: the current positions of the object universe, the
membership bookkeeping (row-stable universe, free list, external-id
remap) and the query set.  Writers — the report buffer, the session's
streaming motion path, the churn admission — all ingest into the
*staging* epoch; :meth:`WorldStore.publish` flips it into a read-only
:class:`~repro.state.snapshot.WorldSnapshot` that every downstream
consumer (pipeline, engines, shard workers) shares zero-copy.

**Double buffering.**  The store keeps two ``(cap, 2)`` position
buffers.  Writes land in the staging buffer; the published buffer is
never written while published, which is what lets snapshots be handed
out as plain views.  At ``publish()`` the buffers swap roles.  The
subtlety is keeping the *new* staging buffer (the previously published
one) current without a full copy: the store tracks ``pending`` (rows
written since the last flip) and ``stale`` (rows the staging buffer
missed because the *previous* epoch wrote them).  At flip time only
``stale & ~pending`` rows — written last epoch but not this one — are
carried forward.  In the steady full-motion state every row is written
every epoch, the carry-forward set is empty, and a publish is O(1):
this is the zero-copy path the ``state.copies_per_cycle`` gauge
asserts.

**Epochs.**  ``publish()`` bumps the epoch only when something was
written since the last flip; an unchanged world returns the *same*
snapshot object (same epoch), so consumers keying caches on
``(token, epoch)`` — e.g. the shard pool's shared-memory segments —
skip re-serialization for free.  ``token`` is unique per store, so
epochs from different stores can never collide in such caches.

Structural events (capacity growth, compaction) allocate a fresh buffer
pair; retired buffers are never written again, so snapshots already
handed out stay valid for as long as anyone holds them.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..obs.registry import NULL_REGISTRY, MetricsRegistry
from .snapshot import ObjectDelta, WorldSnapshot, _frozen_view

#: Universe capacity floor; also the compaction floor (never shrink below).
_MIN_CAP = 64

#: Per-process store identities; epoch caches key on (token, epoch).
_TOKENS = itertools.count(1)


class WorldStore:
    """Columnar world state with double-buffered epoch publication.

    Parameters
    ----------
    initial_positions:
        Optional ``(n, 2)`` seed population.  Seeded stores start in
        *identity* mapping — external id ``i`` is row ``i`` — and defer
        building the id remap table until the first churn admission,
        so fixed-population users (the report buffer) never pay for it.
    capacity:
        Initial row capacity (grown on demand; floored at ``64``).
    registry:
        Metrics sink for the ``state.*`` counters (optional).
    """

    def __init__(
        self,
        initial_positions: Optional[np.ndarray] = None,
        *,
        capacity: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.registry: MetricsRegistry = (
            registry if registry is not None else NULL_REGISTRY
        )
        self.token = next(_TOKENS)
        n0 = 0
        if initial_positions is not None:
            initial_positions = np.asarray(initial_positions, dtype=np.float64)
            if initial_positions.ndim != 2 or initial_positions.shape[1] != 2:
                raise ConfigurationError("positions must be an (N, 2) array")
            n0 = len(initial_positions)
        cap = max(_MIN_CAP, int(capacity or 0), n0)
        # Both buffers carry the vacancy sentinel everywhere a row was
        # never written, so reads through either are always defined.
        self._staging = np.full((cap, 2), -1.0, dtype=np.float64)
        self._published = np.full((cap, 2), -1.0, dtype=np.float64)
        self._pending = np.zeros(cap, dtype=bool)  # written since last flip
        self._stale = np.zeros(cap, dtype=bool)  # staging lags published here
        self._cap = cap
        self._epoch = 0
        self._dirty = False  # anything written since the last flip?
        self._snapshot: Optional[WorldSnapshot] = None

        # Membership: row-stable universe, LIFO free list, external ids.
        # ``_row_of_ext is None`` means the identity mapping (ext id i ==
        # row i, rows [0, top) all live) — the fixed-population fast path.
        self._ext_of_row = np.full(cap, -1, dtype=np.int64)
        self._row_of_ext: Optional[Dict[int, int]] = None
        self._free: List[int] = []
        self._top = 0  # rows ever used; rows >= _top are untouched
        self._live_rows: Optional[np.ndarray] = None

        self._queries = np.empty((0, 2), dtype=np.float64)

        #: Hand-off position copies (dense gathers, legacy paths) — the
        #: number the zero-copy acceptance criterion audits.
        self.full_copies = 0
        #: Buffer-pair reallocations (growth / compaction).
        self.structural_copies = 0

        if n0:
            self._seed(initial_positions)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._cap

    @property
    def epoch(self) -> int:
        """Epoch of the last published snapshot (0 before any publish)."""
        return self._epoch

    @property
    def n_live(self) -> int:
        if self._row_of_ext is None:
            return self._top
        return len(self._row_of_ext)

    @property
    def queries(self) -> np.ndarray:
        """The current query set (read-only)."""
        return self._queries

    def live_rows(self) -> np.ndarray:
        """Sorted rows of the live population (cached between admissions)."""
        if self._live_rows is None:
            self._live_rows = np.flatnonzero(self._ext_of_row[: self._top] >= 0)
        return self._live_rows

    def ext_ids(self, rows: np.ndarray) -> np.ndarray:
        """External ids of ``rows`` (vectorized gather)."""
        return self._ext_of_row[rows]

    def ext_table(self) -> np.ndarray:
        """The full row → external-id table (``-1`` marks vacant rows)."""
        return self._ext_of_row

    def contains(self, object_id: int) -> bool:
        if self._row_of_ext is None:
            return 0 <= object_id < self._top
        return object_id in self._row_of_ext

    def row_of(self, object_id: int) -> Optional[int]:
        """Universe row of a live external id (``None`` if unknown)."""
        if self._row_of_ext is None:
            return object_id if 0 <= object_id < self._top else None
        return self._row_of_ext.get(object_id)

    def rows_of(self, object_ids: Iterable[int]) -> np.ndarray:
        """Universe rows of many external ids; ``KeyError`` on unknowns."""
        ids = np.asarray(list(object_ids) if not hasattr(object_ids, "__len__")
                         else object_ids)
        if self._row_of_ext is None:
            rows = ids.astype(np.intp, copy=True)
            bad = (rows < 0) | (rows >= self._top)
            if bad.any():
                raise KeyError(int(rows[bad][0]))
            return rows
        table = self._row_of_ext
        return np.fromiter(
            (table[int(i)] for i in ids), dtype=np.intp, count=len(ids)
        )

    # ------------------------------------------------------------------
    # Writes (staging epoch)
    # ------------------------------------------------------------------
    def write_row(self, row: int, x: float, y: float) -> None:
        """Write one row's position into the staging epoch."""
        self._staging[row, 0] = x
        self._staging[row, 1] = y
        self._pending[row] = True
        self._dirty = True

    def write_rows(self, rows: np.ndarray, points: np.ndarray) -> None:
        """Vectorized position write into the staging epoch."""
        self._staging[rows] = points
        self._pending[rows] = True
        self._dirty = True

    def set_queries(self, queries: np.ndarray) -> None:
        """Replace the query set (the session admits query churn here)."""
        self._queries = _frozen_view(np.asarray(queries, dtype=np.float64))

    # ------------------------------------------------------------------
    # Reads (latest values: published overlaid with staged writes)
    # ------------------------------------------------------------------
    def read_rows(self, rows: np.ndarray) -> np.ndarray:
        """Latest positions of ``rows`` (a fresh array, caller-owned)."""
        rows = np.asarray(rows, dtype=np.intp)
        out = self._published[rows]
        staged = self._pending[rows]
        if staged.any():
            out[staged] = self._staging[rows[staged]]
        return out

    def _latest(self) -> np.ndarray:
        """Latest value of every row — only for structural reallocation."""
        out = self._published.copy()
        rows = np.flatnonzero(self._pending)
        if len(rows):
            out[rows] = self._staging[rows]
        return out

    # ------------------------------------------------------------------
    # Publication
    # ------------------------------------------------------------------
    def publish(self) -> WorldSnapshot:
        """Flip the staging epoch into a read-only snapshot.

        With no writes since the last flip this returns the *same*
        snapshot object (same epoch) — consumers may use ``(token,
        epoch)`` equality as a bytes-identical guarantee.  Otherwise the
        flip carries forward only the rows the previous epoch wrote and
        this one did not, bumps the epoch, and freezes the new buffer.
        """
        registry = self.registry
        if self._snapshot is not None and not self._dirty:
            return self._snapshot
        need = np.flatnonzero(self._stale & ~self._pending)
        if len(need):
            self._staging[need] = self._published[need]
            registry.inc("state.synced_rows", len(need))
        self._published, self._staging = self._staging, self._published
        self._stale, self._pending = self._pending, self._stale
        self._pending[:] = False
        self._epoch += 1
        self._dirty = False
        self._snapshot = WorldSnapshot(
            positions=_frozen_view(self._published),
            epoch=self._epoch,
            token=self.token,
            queries=self._queries,
        )
        registry.inc("state.publishes")
        if registry.enabled:
            registry.set_gauge("state.epoch", float(self._epoch))
        return self._snapshot

    def packed(self, snapshot: Optional[WorldSnapshot] = None) -> WorldSnapshot:
        """The live population densely packed, for member-less engines.

        With no vacant rows below the high-water mark the live rows are
        exactly ``[0, top)`` and this is a zero-copy contiguous view of
        the published buffer, keeping the snapshot's epoch.  With holes
        it must gather — one counted ``state.full_copies`` hand-off copy
        — and the result is anonymous (``epoch None``): a gathered array
        is new memory every time, so nothing may cache by epoch.
        """
        snap = snapshot if snapshot is not None else self.publish()
        if not self._free:
            return WorldSnapshot(
                positions=snap.positions[: self._top],
                epoch=snap.epoch,
                token=snap.token,
                queries=snap.queries,
            )
        gathered = snap.positions[self.live_rows()]
        self.full_copies += 1
        self.registry.inc("state.full_copies")
        return WorldSnapshot(
            positions=_frozen_view(gathered), queries=snap.queries
        )

    # ------------------------------------------------------------------
    # Membership (churn admission)
    # ------------------------------------------------------------------
    def admit(
        self,
        joins: Mapping[int, Tuple[float, float]],
        leaves: Iterable[int],
        *,
        member_mode: bool,
    ) -> ObjectDelta:
        """Apply one cycle's batched joins and leaves; the native delta.

        Leaves free their rows (vacancy sentinel written so snapshots
        match the packed-survivor world bit for bit); joins take rows
        from the free list or the high-water mark, growing capacity as
        needed.  When occupancy drops below a quarter the universe is
        compacted — row order preserved, ``compacted=True`` flagged so
        engines drop row-keyed state.  The returned
        :class:`~repro.state.snapshot.ObjectDelta` is exactly what
        :meth:`~repro.engines.base.BaseEngine.apply_object_delta` eats.
        """
        table = self._materialize()
        left_rows: List[int] = []
        for oid in leaves:
            row = table.pop(int(oid))
            self._ext_of_row[row] = -1
            self.write_row(row, -1.0, -1.0)
            self._free.append(row)
            left_rows.append(row)
        joined_rows: List[int] = []
        for oid, (x, y) in joins.items():
            row = self._alloc_row()
            self.write_row(row, float(x), float(y))
            self._ext_of_row[row] = oid
            table[int(oid)] = row
            joined_rows.append(row)
        self._live_rows = None
        compacted = self._maybe_compact()
        return ObjectDelta(
            joined=np.asarray(joined_rows, dtype=np.intp),
            left=np.asarray(left_rows, dtype=np.intp),
            member_idx=self.live_rows() if member_mode else None,
            n_universe=self._cap,
            compacted=compacted,
        )

    def _seed(self, positions: np.ndarray) -> None:
        n = len(positions)
        self._staging[:n] = positions
        self._pending[:n] = True
        self._top = n
        self._ext_of_row[:n] = np.arange(n, dtype=np.int64)
        self._live_rows = None
        self._dirty = True

    def _materialize(self) -> Dict[int, int]:
        """Leave identity mapping on the first real churn admission."""
        if self._row_of_ext is None:
            self._row_of_ext = {i: i for i in range(self._top)}
        return self._row_of_ext

    def _alloc_row(self) -> int:
        if self._free:
            return self._free.pop()
        if self._top == self._cap:
            self._grow(self._cap * 2)
        row = self._top
        self._top += 1
        return row

    def _reallocate(
        self, new_cap: int, positions: np.ndarray, ext: np.ndarray
    ) -> None:
        """Install a fresh buffer pair (structural copy).

        The retired pair is never written again, so snapshots already
        handed out stay frozen at their epoch's content.
        """
        staging = np.full((new_cap, 2), -1.0, dtype=np.float64)
        staging[: len(positions)] = positions
        self._staging = staging
        self._published = staging.copy()
        self._pending = np.zeros(new_cap, dtype=bool)
        self._stale = np.zeros(new_cap, dtype=bool)
        ext_of_row = np.full(new_cap, -1, dtype=np.int64)
        ext_of_row[: len(ext)] = ext
        self._ext_of_row = ext_of_row
        self._cap = new_cap
        self._live_rows = None
        self._dirty = True
        self.structural_copies += 1
        self.registry.inc("state.structural_copies")

    def _grow(self, new_cap: int) -> None:
        self._reallocate(new_cap, self._latest(), self._ext_of_row)

    def _maybe_compact(self) -> bool:
        """Repack survivors when the universe is three-quarters vacant.

        Row order is preserved (survivors keep their relative order), so
        dense-mode consumers see an unchanged packed array; member-mode
        engines are told via ``ObjectDelta.compacted`` and rebuild.
        """
        n_live = self.n_live
        if self._cap <= _MIN_CAP or n_live * 4 > self._cap:
            return False
        rows = self.live_rows()
        new_cap = max(_MIN_CAP, 2 * n_live)
        latest = self.read_rows(rows)
        ext = self._ext_of_row[rows].copy()
        self._reallocate(new_cap, latest, ext)
        self._top = n_live
        self._free = []
        self._row_of_ext = {int(oid): row for row, oid in enumerate(ext)}
        return True
