"""Published world-state views and the churn delta records.

A :class:`WorldSnapshot` is the read-only face of one published store
epoch: the paper's ``OBJ_snapshot`` (§3) as a zero-copy view instead of
a private array per layer.  The buffer, the session, the cycle
pipeline, every engine and the shard workers all read the *same*
``writeable=False`` view; the owning :class:`~repro.state.store.WorldStore`
keeps writing into its staging buffer and never mutates a published
epoch, which is what makes sharing safe.

Snapshots are array-likes: ``np.asarray(snapshot, dtype=np.float64)``
returns the read-only positions view without copying, so engine code
written against plain ``(N, 2)`` arrays keeps working unchanged.  A raw
ndarray entering the pipeline is wrapped by :func:`as_world_snapshot`
into an *anonymous* snapshot (``epoch is None``): correctness-neutral,
but epoch-keyed fast paths (shared-memory reuse, content-stability
hints) stay off because nothing vouches for the array's stability.

The churn delta records (:class:`QueryDelta` / :class:`ObjectDelta`)
live here too — they are state-plane records produced by the store and
consumed by the engines, and homing them below both layers keeps the
import graph acyclic (``engines.base`` re-exports them for
compatibility).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "ObjectDelta",
    "PositionsLike",
    "QueryDelta",
    "WorldSnapshot",
    "as_world_snapshot",
]


@dataclass(frozen=True)
class QueryDelta:
    """One cycle's batched query-set change, applied between cycles.

    ``queries`` is the complete post-churn ``(nq', 2)`` array; ``kept``
    maps each new row to the engine row it occupied before the delta
    (``-1`` for newly registered queries).  Kept rows carry *unchanged*
    positions — the session layer registers and drops queries but never
    moves them through a delta, so per-query state (previous answers,
    critical rectangles, routing seeds) stays valid under the remap.
    """

    queries: np.ndarray
    kept: np.ndarray


@dataclass(frozen=True)
class ObjectDelta:
    """One cycle's batched object-population change.

    ``joined``/``left`` hold the affected row ids of the caller's
    position array (opaque to engines that rebuild); ``member_idx`` is
    the full sorted set of live rows when the caller runs engines in
    *member mode* (positions stay a stable row universe and membership
    is a subset), or ``None`` when the caller compacts positions to the
    live population itself.  ``compacted`` marks a row-remapping event:
    every cross-cycle structure keyed by row id is invalid.
    """

    joined: np.ndarray
    left: np.ndarray
    member_idx: Optional[np.ndarray]
    n_universe: int
    compacted: bool = False


def _frozen_view(positions: np.ndarray) -> np.ndarray:
    """A read-only view of ``positions`` (the base array is untouched)."""
    view = positions.view()
    view.flags.writeable = False
    return view


@dataclass(frozen=True)
class WorldSnapshot:
    """One consistent, immutable view of the world's positions.

    ``positions`` is always a read-only ``(rows, 2)`` float64 view —
    writing through it raises.  ``epoch`` / ``token`` identify which
    store publication the view belongs to: equal ``(token, epoch)``
    pairs are guaranteed to be the *same bytes*, so consumers may key
    caches (shared-memory segments, alias checks) on them.  Anonymous
    snapshots (``epoch is None``) carry no such guarantee and must be
    treated as fresh content every time.
    """

    positions: np.ndarray
    epoch: Optional[int] = None
    token: int = 0
    queries: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.positions.flags.writeable:  # pragma: no cover - guarded upstream
            object.__setattr__(self, "positions", _frozen_view(self.positions))

    # -- array-like protocol: legacy engine code sees a plain (N, 2) array
    def __array__(
        self, dtype: Optional[np.dtype] = None, copy: Optional[bool] = None
    ) -> np.ndarray:
        if copy:
            return self.positions.copy().astype(dtype or np.float64, copy=False)
        if dtype is None or np.dtype(dtype) == self.positions.dtype:
            return self.positions
        return self.positions.astype(dtype)

    def __len__(self) -> int:
        return len(self.positions)

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.positions.shape

    @property
    def n_rows(self) -> int:
        return len(self.positions)

    @property
    def versioned(self) -> bool:
        """Whether the view is pinned to a store epoch (content-stable)."""
        return self.epoch is not None


#: What the pipeline accepts: a published snapshot or any (N, 2) array-like.
PositionsLike = Union[WorldSnapshot, np.ndarray]


def as_world_snapshot(positions: PositionsLike) -> WorldSnapshot:
    """Normalize pipeline input to a :class:`WorldSnapshot`.

    Raw arrays are wrapped as *anonymous* snapshots: the positions
    become a read-only view (the caller's array object is not frozen —
    only the view handed to engines is), ``epoch`` stays ``None``, and
    no content-stability fast path applies.
    """
    if isinstance(positions, WorldSnapshot):
        return positions
    arr = np.asarray(positions, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ConfigurationError("positions must be an (N, 2) array")
    return WorldSnapshot(positions=_frozen_view(arr))
