"""Time-parameterized R-tree node.

A TPR-tree MBR (Saltenis et al., SIGMOD 2000) bounds both the positions
*and the velocities* of its subtree, all normalised to reference time 0:
the spatial interval ``[xlo, xhi]`` grows over time as
``[xlo + vxlo * t, xhi + vxhi * t]``.  Because ``vxlo <= vxhi`` the
interval never inverts for ``t >= 0``, and it conservatively contains
every enclosed object's linearly-extrapolated position at any future
time — until an update tightens it.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple


class TPRNode:
    """One TPR-tree node (leaf or internal) with a time-parameterized MBR."""

    __slots__ = (
        "leaf",
        "ids",
        "children",
        "parent",
        "xlo",
        "ylo",
        "xhi",
        "yhi",
        "vxlo",
        "vylo",
        "vxhi",
        "vyhi",
    )

    def __init__(self, leaf: bool, parent: Optional["TPRNode"] = None) -> None:
        self.leaf = leaf
        self.ids: List[int] = []
        self.children: List["TPRNode"] = []
        self.parent = parent
        self.reset_mbr()

    def reset_mbr(self) -> None:
        self.xlo = math.inf
        self.ylo = math.inf
        self.xhi = -math.inf
        self.yhi = -math.inf
        self.vxlo = math.inf
        self.vylo = math.inf
        self.vxhi = -math.inf
        self.vyhi = -math.inf

    # ------------------------------------------------------------------
    # MBR growth
    # ------------------------------------------------------------------
    def include_entry(
        self, x0: float, y0: float, vx: float, vy: float
    ) -> None:
        """Grow the MBR to cover a moving point (state at reference time 0)."""
        if x0 < self.xlo:
            self.xlo = x0
        if x0 > self.xhi:
            self.xhi = x0
        if y0 < self.ylo:
            self.ylo = y0
        if y0 > self.yhi:
            self.yhi = y0
        if vx < self.vxlo:
            self.vxlo = vx
        if vx > self.vxhi:
            self.vxhi = vx
        if vy < self.vylo:
            self.vylo = vy
        if vy > self.vyhi:
            self.vyhi = vy

    def include_node(self, other: "TPRNode") -> None:
        if other.xlo < self.xlo:
            self.xlo = other.xlo
        if other.xhi > self.xhi:
            self.xhi = other.xhi
        if other.ylo < self.ylo:
            self.ylo = other.ylo
        if other.yhi > self.yhi:
            self.yhi = other.yhi
        if other.vxlo < self.vxlo:
            self.vxlo = other.vxlo
        if other.vxhi > self.vxhi:
            self.vxhi = other.vxhi
        if other.vylo < self.vylo:
            self.vylo = other.vylo
        if other.vyhi > self.vyhi:
            self.vyhi = other.vyhi

    # ------------------------------------------------------------------
    # Time-parameterized geometry
    # ------------------------------------------------------------------
    def bounds_at(self, t: float) -> Tuple[float, float, float, float]:
        """The spatial MBR at time ``t >= 0``."""
        return (
            self.xlo + self.vxlo * t,
            self.ylo + self.vylo * t,
            self.xhi + self.vxhi * t,
            self.yhi + self.vyhi * t,
        )

    def area_at(self, t: float) -> float:
        xlo, ylo, xhi, yhi = self.bounds_at(t)
        if xhi < xlo or yhi < ylo:
            return 0.0
        return (xhi - xlo) * (yhi - ylo)

    def integrated_area(self, t0: float, t1: float) -> float:
        """Exact integral of the (quadratic) area over ``[t0, t1]``.

        Simpson's rule is exact for polynomials of degree <= 3, and the
        area of a TP-MBR is quadratic in t — so three samples suffice.
        This is the TPR-tree's insertion metric.
        """
        if t1 <= t0:
            return self.area_at(t0)
        mid = 0.5 * (t0 + t1)
        return (
            (t1 - t0)
            / 6.0
            * (self.area_at(t0) + 4.0 * self.area_at(mid) + self.area_at(t1))
        )

    def min_dist2_at(self, px: float, py: float, t: float) -> float:
        """Squared MINDIST from a static point to the MBR at time ``t``."""
        xlo, ylo, xhi, yhi = self.bounds_at(t)
        dx = 0.0
        if px < xlo:
            dx = xlo - px
        elif px > xhi:
            dx = px - xhi
        dy = 0.0
        if py < ylo:
            dy = ylo - py
        elif py > yhi:
            dy = py - yhi
        return dx * dx + dy * dy

    def contains_entry_at(
        self, x0: float, y0: float, vx: float, vy: float, t: float
    ) -> bool:
        """Whether the MBR at ``t`` contains the entry's position at ``t``."""
        xlo, ylo, xhi, yhi = self.bounds_at(t)
        x = x0 + vx * t
        y = y0 + vy * t
        eps = 1e-9
        return xlo - eps <= x <= xhi + eps and ylo - eps <= y <= yhi + eps

    def size(self) -> int:
        return len(self.ids) if self.leaf else len(self.children)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "leaf" if self.leaf else "node"
        return f"<TPRNode {kind} n={self.size()}>"
