"""TPR-tree monitoring engine — the predictive baseline, driven honestly.

The TPR-tree answers from *recorded trajectories*.  This engine keeps its
answers exact the only way a predictive index can in the paper's
unpredictable-motion setting: every cycle it compares each object's actual
snapshot position against the tree's prediction and re-inserts every
object that deviates (velocity re-estimated from the last two snapshots).

* Piecewise-linear motion with rare velocity changes → few updates per
  cycle: the TPR-tree shines, exactly the regime it was designed for.
* The paper's free motion (velocities change every cycle) → *every*
  object updates *every* cycle, i.e. a full delete+insert pass: the
  degeneration to R-tree behaviour described in §5.4.

Churn: velocity estimates are positional over the dense population, so
both :class:`~repro.engines.base.BaseEngine` delta hooks keep the rebuild
fallback — a churned cycle reloads the tree from the packed survivors.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..core.answers import AnswerList
from ..engines.base import BaseEngine
from ..errors import IndexStateError
from .tprtree import TPRTree

# Predictions matching the snapshot to within this distance are "valid";
# anything larger means the recorded velocity is stale and the object must
# be updated for answers to stay exact.
_PREDICTION_TOLERANCE = 1e-12


class TPREngine(BaseEngine):
    """Predictive TPR-tree engine with exactness-preserving maintenance."""

    def __init__(
        self,
        k: int,
        queries: np.ndarray,
        horizon: float = 10.0,
        max_entries: int = 32,
        tau: float = 1.0,
    ) -> None:
        super().__init__(k, queries)
        self.name = "tprtree/predictive"
        self.horizon = horizon
        self.tau = tau
        self.index = TPRTree(horizon=horizon, max_entries=max_entries)
        self._now = 0.0
        self._previous: Optional[np.ndarray] = None
        #: Number of per-object updates issued on the last maintain() —
        #: the degeneration metric (NP updates/cycle = R-tree behaviour).
        self.last_update_count = 0

    def load(self, positions: np.ndarray) -> None:
        positions = np.asarray(positions, dtype=np.float64)
        self.index = TPRTree(horizon=self.horizon, max_entries=self.index.max_entries)
        self._now = 0.0
        # No motion observed yet: zero initial velocities.
        xs = positions[:, 0].tolist()
        ys = positions[:, 1].tolist()
        for object_id in range(len(positions)):
            self.index.insert(object_id, xs[object_id], ys[object_id], 0.0, 0.0, 0.0)
        self._previous = positions.copy()
        self._positions = positions
        self.last_update_count = len(positions)

    def maintain(self, positions: np.ndarray) -> None:
        if self._previous is None:
            raise IndexStateError("load() must run before maintain()")
        positions = np.asarray(positions, dtype=np.float64)
        if len(positions) != len(self._previous):
            self.load(positions)
            return
        self._now += self.tau
        now = self._now
        # Which predictions went stale?  Vectorised check against the
        # recorded trajectories.
        predicted = np.empty_like(positions)
        for object_id in range(len(positions)):
            predicted[object_id] = self.index.position_at(object_id, now)
        deviation = np.max(np.abs(predicted - positions), axis=1)
        stale = np.nonzero(deviation > _PREDICTION_TOLERANCE)[0]
        velocities = (positions - self._previous) / self.tau
        for object_id in stale.tolist():
            self.index.update(
                object_id,
                float(positions[object_id, 0]),
                float(positions[object_id, 1]),
                float(velocities[object_id, 0]),
                float(velocities[object_id, 1]),
                now,
            )
        self.last_update_count = int(len(stale))
        self.metrics.inc("tpr.maintain.updates", self.last_update_count)
        self._previous = positions.copy()
        self._positions = positions

    def answer(self) -> List[AnswerList]:
        self.metrics.inc("tpr.answer.queries", self.n_queries)
        return [
            self.index.knn(qx, qy, self.k, self._now) for qx, qy in self.queries
        ]
