"""Main-memory TPR-tree (time-parameterized R-tree).

The predictive-index baseline of the paper's related work (§2): objects
are indexed as linear trajectories ``p(t) = p0 + v * t`` and queries are
answered at any (current or future) time while the recorded velocities
remain valid.  Following Saltenis et al. (SIGMOD 2000):

* node MBRs bound positions *and* velocities (see
  :class:`~repro.tprtree.node.TPRNode`), conservative for all ``t >= 0``;
* insertion descends by least *integrated area enlargement* over the
  horizon ``[now, now + H]`` (computed exactly — the area is quadratic in
  ``t``, so Simpson's rule is exact);
* splits use quadratic seeds on the bounds at ``now + H/2``;
* k-NN at time ``t`` is MINDIST-ordered best-first search on the MBRs
  evaluated at ``t``; leaf distances use the exact extrapolated positions.

The paper's §5.4 point — "when the velocities of the objects are
constantly changing ... the TPR-tree degenerates to the R-tree" — is
reproduced by :class:`repro.tprtree.engine.TPREngine` and the
``ablation_tpr_degeneration`` experiment.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Dict, List, Optional, Tuple

from ..core.answers import AnswerList
from ..errors import ConfigurationError, IndexStateError, NotEnoughObjectsError
from .node import TPRNode


class TPRTree:
    """A dynamic TPR-tree over 2D points with linear motion.

    Parameters
    ----------
    horizon:
        The time window ``H`` the insertion metric optimises for (in the
        same units as query times; one monitoring cycle = 1.0 by default).
    max_entries, min_entries:
        Node capacity / underflow threshold, as in the R-tree.
    """

    def __init__(
        self,
        horizon: float = 10.0,
        max_entries: int = 32,
        min_entries: Optional[int] = None,
    ) -> None:
        if horizon <= 0.0:
            raise ConfigurationError(f"horizon must be > 0, got {horizon}")
        if max_entries < 4:
            raise ConfigurationError(f"max_entries must be >= 4, got {max_entries}")
        self.horizon = horizon
        self.max_entries = max_entries
        self.min_entries = (
            max(2, max_entries * 2 // 5) if min_entries is None else min_entries
        )
        if not 1 <= self.min_entries <= max_entries // 2:
            raise ConfigurationError(
                f"min_entries={self.min_entries} must be in [1, max_entries/2]"
            )
        self._root = TPRNode(leaf=True)
        # Per-object trajectory state, normalised to reference time 0:
        # position-at-0 and velocity.
        self._x0: Dict[int, float] = {}
        self._y0: Dict[int, float] = {}
        self._vx: Dict[int, float] = {}
        self._vy: Dict[int, float] = {}
        self._leaf_of: Dict[int, TPRNode] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._x0)

    @property
    def height(self) -> int:
        node = self._root
        levels = 1
        while not node.leaf:
            node = node.children[0]
            levels += 1
        return levels

    def position_at(self, object_id: int, t: float) -> Tuple[float, float]:
        """The recorded trajectory's position at time ``t``."""
        return (
            self._x0[object_id] + self._vx[object_id] * t,
            self._y0[object_id] + self._vy[object_id] * t,
        )

    def velocity_of(self, object_id: int) -> Tuple[float, float]:
        return self._vx[object_id], self._vy[object_id]

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(
        self, object_id: int, x: float, y: float, vx: float, vy: float, now: float
    ) -> None:
        """Index an object observed at ``(x, y)`` with velocity ``(vx, vy)``
        at time ``now``."""
        if object_id in self._x0:
            raise IndexStateError(f"object {object_id} is already indexed")
        # Normalise to reference time 0 (valid for queries at t >= now).
        x0 = x - vx * now
        y0 = y - vy * now
        self._x0[object_id] = x0
        self._y0[object_id] = y0
        self._vx[object_id] = vx
        self._vy[object_id] = vy
        leaf = self._choose_leaf(self._root, x0, y0, vx, vy, now)
        leaf.ids.append(object_id)
        leaf.include_entry(x0, y0, vx, vy)
        self._leaf_of[object_id] = leaf
        self._handle_overflow(leaf, now)
        self._grow_upward(leaf.parent, x0, y0, vx, vy)

    def _grow_upward(
        self, node: Optional[TPRNode], x0: float, y0: float, vx: float, vy: float
    ) -> None:
        while node is not None:
            node.include_entry(x0, y0, vx, vy)
            node = node.parent

    def _choose_leaf(
        self, node: TPRNode, x0: float, y0: float, vx: float, vy: float, now: float
    ) -> TPRNode:
        t1 = now + self.horizon
        while not node.leaf:
            best = None
            best_enlargement = math.inf
            for child in node.children:
                before = child.integrated_area(now, t1)
                # Tentatively grow, measure, then restore.
                saved = (
                    child.xlo, child.ylo, child.xhi, child.yhi,
                    child.vxlo, child.vylo, child.vxhi, child.vyhi,
                )
                child.include_entry(x0, y0, vx, vy)
                after = child.integrated_area(now, t1)
                (
                    child.xlo, child.ylo, child.xhi, child.yhi,
                    child.vxlo, child.vylo, child.vxhi, child.vyhi,
                ) = saved
                enlargement = after - before
                if enlargement < best_enlargement:
                    best = child
                    best_enlargement = enlargement
            assert best is not None
            node = best
        return node

    # ------------------------------------------------------------------
    # Split (quadratic seeds on the mid-horizon rectangles)
    # ------------------------------------------------------------------
    def _entry_states(
        self, node: TPRNode
    ) -> List[Tuple[float, float, float, float]]:
        if node.leaf:
            return [
                (self._x0[i], self._y0[i], self._vx[i], self._vy[i])
                for i in node.ids
            ]
        return [
            (0.5 * (c.xlo + c.xhi), 0.5 * (c.ylo + c.yhi),
             0.5 * (c.vxlo + c.vxhi), 0.5 * (c.vylo + c.vyhi))
            for c in node.children
        ]

    def _handle_overflow(self, node: TPRNode, now: float) -> None:
        while node.size() > self.max_entries:
            sibling = self._split(node, now)
            parent = node.parent
            if parent is None:
                new_root = TPRNode(leaf=False)
                for child in (node, sibling):
                    child.parent = new_root
                    new_root.children.append(child)
                    new_root.include_node(child)
                self._root = new_root
                return
            sibling.parent = parent
            parent.children.append(sibling)
            self._recompute_mbr(parent)
            node = parent

    def _split(self, node: TPRNode, now: float) -> TPRNode:
        """Quadratic split by projected positions at ``now + H/2``."""
        t_mid = now + 0.5 * self.horizon
        states = self._entry_states(node)
        projected = [(x0 + vx * t_mid, y0 + vy * t_mid) for x0, y0, vx, vy in states]
        seed_a, seed_b = _pick_seeds(projected)
        entries = list(node.ids) if node.leaf else list(node.children)
        group_a = {seed_a}
        group_b = {seed_b}
        remaining = [i for i in range(len(entries)) if i not in (seed_a, seed_b)]
        # Greedy assignment by distance to the two seed projections, then
        # rebalance so both groups satisfy the minimum fill.
        ax, ay = projected[seed_a]
        bx, by = projected[seed_b]
        for i in remaining:
            px, py = projected[i]
            da = (px - ax) ** 2 + (py - ay) ** 2
            db = (px - bx) ** 2 + (py - by) ** 2
            if da <= db:
                group_a.add(i)
            else:
                group_b.add(i)
        min_fill = self.min_entries
        _rebalance(group_a, group_b, projected, (ax, ay), min_fill)
        _rebalance(group_b, group_a, projected, (bx, by), min_fill)
        sibling = TPRNode(leaf=node.leaf, parent=node.parent)
        keep = [entries[i] for i in sorted(group_a)]
        move = [entries[i] for i in sorted(group_b)]
        if node.leaf:
            node.ids = keep  # type: ignore[assignment]
            sibling.ids = move  # type: ignore[assignment]
            for object_id in move:
                self._leaf_of[object_id] = sibling
        else:
            node.children = keep  # type: ignore[assignment]
            sibling.children = move  # type: ignore[assignment]
            for child in move:
                child.parent = sibling
        self._recompute_mbr(node)
        self._recompute_mbr(sibling)
        return sibling

    def _recompute_mbr(self, node: TPRNode) -> None:
        node.reset_mbr()
        if node.leaf:
            for object_id in node.ids:
                node.include_entry(
                    self._x0[object_id],
                    self._y0[object_id],
                    self._vx[object_id],
                    self._vy[object_id],
                )
        else:
            for child in node.children:
                node.include_node(child)

    # ------------------------------------------------------------------
    # Deletion / update
    # ------------------------------------------------------------------
    def delete(self, object_id: int) -> None:
        leaf = self._leaf_of.get(object_id)
        if leaf is None:
            raise IndexStateError(f"object {object_id} is not indexed")
        leaf.ids.remove(object_id)
        del self._leaf_of[object_id]
        del self._x0[object_id]
        del self._y0[object_id]
        del self._vx[object_id]
        del self._vy[object_id]
        self._condense(leaf)

    def _condense(self, node: TPRNode) -> None:
        orphan_leaves: List[TPRNode] = []
        while node.parent is not None:
            parent = node.parent
            if node.size() < self.min_entries:
                parent.children.remove(node)
                self._collect_leaves(node, orphan_leaves)
            else:
                self._recompute_mbr(node)
            node = parent
        self._recompute_mbr(self._root)
        for leaf in orphan_leaves:
            for object_id in leaf.ids:
                # Re-insert preserving the stored trajectory (tref 0 form).
                x0 = self._x0[object_id]
                y0 = self._y0[object_id]
                vx = self._vx[object_id]
                vy = self._vy[object_id]
                target = self._choose_leaf(self._root, x0, y0, vx, vy, 0.0)
                target.ids.append(object_id)
                target.include_entry(x0, y0, vx, vy)
                self._leaf_of[object_id] = target
                self._handle_overflow(target, 0.0)
                self._grow_upward(target.parent, x0, y0, vx, vy)
        while not self._root.leaf and len(self._root.children) == 1:
            self._root = self._root.children[0]
            self._root.parent = None

    def _collect_leaves(self, node: TPRNode, out: List[TPRNode]) -> None:
        if node.leaf:
            out.append(node)
            return
        for child in node.children:
            self._collect_leaves(child, out)

    def update(
        self, object_id: int, x: float, y: float, vx: float, vy: float, now: float
    ) -> None:
        """Refresh an object's trajectory (delete + insert, tightening MBRs).

        This is the TPR-tree's maintenance primitive; under constantly
        changing velocities every object needs one per cycle, which is the
        degeneration the paper describes.
        """
        self.delete(object_id)
        self.insert(object_id, x, y, vx, vy, now)

    # ------------------------------------------------------------------
    # Time-parameterized k-NN
    # ------------------------------------------------------------------
    def knn(self, qx: float, qy: float, k: int, t: float) -> AnswerList:
        """Exact k-NN of a static query point at time ``t`` (>= last update).

        Distances are to the recorded linear trajectories evaluated at
        ``t``; the answer is exact for the predicted world, and exact for
        the real world whenever every recorded velocity is still valid.
        """
        if k > len(self._x0):
            raise NotEnoughObjectsError(k, len(self._x0))
        answers = AnswerList(k)
        counter = itertools.count()
        heap = [(self._root.min_dist2_at(qx, qy, t), next(counter), self._root)]
        x0 = self._x0
        y0 = self._y0
        vx = self._vx
        vy = self._vy
        while heap:
            d2, _, node = heapq.heappop(heap)
            if answers.full and d2 >= answers.worst_dist2:
                break
            if node.leaf:
                for object_id in node.ids:
                    px = x0[object_id] + vx[object_id] * t
                    py = y0[object_id] + vy[object_id] * t
                    dx = px - qx
                    dy = py - qy
                    answers.offer(dx * dx + dy * dy, object_id)
            else:
                for child in node.children:
                    child_d2 = child.min_dist2_at(qx, qy, t)
                    if not answers.full or child_d2 < answers.worst_dist2:
                        heapq.heappush(heap, (child_d2, next(counter), child))
        return answers

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self, t: float = 0.0) -> None:
        """Check conservative containment at time ``t`` plus structure."""
        count = self._check(self._root, None, t)
        if count != len(self._x0):
            raise IndexStateError(
                f"tree stores {count} entries, expected {len(self._x0)}"
            )

    def _check(self, node: TPRNode, parent: Optional[TPRNode], t: float) -> int:
        if node.parent is not parent:
            raise IndexStateError("broken parent pointer")
        if node.leaf:
            for object_id in node.ids:
                if not node.contains_entry_at(
                    self._x0[object_id],
                    self._y0[object_id],
                    self._vx[object_id],
                    self._vy[object_id],
                    t,
                ):
                    raise IndexStateError(
                        f"leaf TP-MBR does not contain object {object_id} at t={t}"
                    )
                if self._leaf_of.get(object_id) is not node:
                    raise IndexStateError(f"stale leaf map for object {object_id}")
            return len(node.ids)
        total = 0
        for child in node.children:
            cx = child.bounds_at(t)
            px = node.bounds_at(t)
            eps = 1e-9
            if (
                cx[0] < px[0] - eps
                or cx[1] < px[1] - eps
                or cx[2] > px[2] + eps
                or cx[3] > px[3] + eps
            ):
                raise IndexStateError(f"child TP-MBR escapes its parent at t={t}")
            total += self._check(child, node, t)
        return total


def _rebalance(
    small: set,
    big: set,
    projected: List[Tuple[float, float]],
    anchor: Tuple[float, float],
    min_fill: int,
) -> None:
    """Move the entries of ``big`` nearest to ``anchor`` into ``small``
    until ``small`` reaches the minimum fill."""
    ax, ay = anchor
    while len(small) < min_fill and len(big) > min_fill:
        best = None
        best_d = math.inf
        for i in big:
            px, py = projected[i]
            d = (px - ax) ** 2 + (py - ay) ** 2
            if d < best_d:
                best_d = d
                best = i
        assert best is not None
        big.remove(best)
        small.add(best)


def _pick_seeds(points: List[Tuple[float, float]]) -> Tuple[int, int]:
    """The two projected points farthest apart (quadratic seeds)."""
    best = (0, 1)
    worst = -1.0
    for a in range(len(points)):
        ax, ay = points[a]
        for b in range(a + 1, len(points)):
            bx, by = points[b]
            d = (ax - bx) ** 2 + (ay - by) ** 2
            if d > worst:
                worst = d
                best = (a, b)
    return best
