"""TPR-tree: the predictive-query baseline (§2 related work)."""

from .engine import TPREngine
from .node import TPRNode
from .tprtree import TPRTree

__all__ = ["TPREngine", "TPRNode", "TPRTree"]
