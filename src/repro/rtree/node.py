"""R-tree node structure.

Nodes carry their own minimum bounding rectangle (MBR) as four plain float
slots — profiling shows this beats tuples or nested objects in CPython.
Leaf nodes store object IDs (point coordinates live in the owning
:class:`~repro.rtree.rtree.RTree`); internal nodes store child nodes.
"""

from __future__ import annotations

import math
from typing import List, Optional


class RNode:
    """One R-tree node (leaf or internal)."""

    __slots__ = ("leaf", "ids", "children", "parent", "xlo", "ylo", "xhi", "yhi")

    def __init__(self, leaf: bool, parent: Optional["RNode"] = None) -> None:
        self.leaf = leaf
        self.ids: List[int] = [] if leaf else []
        self.children: List["RNode"] = []
        self.parent = parent
        self.xlo = math.inf
        self.ylo = math.inf
        self.xhi = -math.inf
        self.yhi = -math.inf

    # ------------------------------------------------------------------
    # MBR manipulation
    # ------------------------------------------------------------------
    def reset_mbr(self) -> None:
        self.xlo = math.inf
        self.ylo = math.inf
        self.xhi = -math.inf
        self.yhi = -math.inf

    def include_point(self, x: float, y: float) -> None:
        if x < self.xlo:
            self.xlo = x
        if x > self.xhi:
            self.xhi = x
        if y < self.ylo:
            self.ylo = y
        if y > self.yhi:
            self.yhi = y

    def include_node(self, other: "RNode") -> None:
        if other.xlo < self.xlo:
            self.xlo = other.xlo
        if other.xhi > self.xhi:
            self.xhi = other.xhi
        if other.ylo < self.ylo:
            self.ylo = other.ylo
        if other.yhi > self.yhi:
            self.yhi = other.yhi

    def contains_point(self, x: float, y: float) -> bool:
        return self.xlo <= x <= self.xhi and self.ylo <= y <= self.yhi

    def area(self) -> float:
        if self.xhi < self.xlo:
            return 0.0
        return (self.xhi - self.xlo) * (self.yhi - self.ylo)

    def enlargement_for(self, x: float, y: float) -> float:
        """Area increase needed for this MBR to cover point ``(x, y)``."""
        xlo = self.xlo if self.xlo < x else x
        xhi = self.xhi if self.xhi > x else x
        ylo = self.ylo if self.ylo < y else y
        yhi = self.yhi if self.yhi > y else y
        return (xhi - xlo) * (yhi - ylo) - self.area()

    def min_dist2(self, px: float, py: float) -> float:
        """Squared MINDIST from a point to this MBR (Roussopoulos et al.)."""
        dx = 0.0
        if px < self.xlo:
            dx = self.xlo - px
        elif px > self.xhi:
            dx = px - self.xhi
        dy = 0.0
        if py < self.ylo:
            dy = self.ylo - py
        elif py > self.yhi:
            dy = py - self.yhi
        return dx * dx + dy * dy

    def size(self) -> int:
        """Number of entries (IDs for leaves, children for internals)."""
        return len(self.ids) if self.leaf else len(self.children)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "leaf" if self.leaf else "node"
        return (
            f"<RNode {kind} n={self.size()} "
            f"mbr=({self.xlo:.3f},{self.ylo:.3f})-({self.xhi:.3f},{self.yhi:.3f})>"
        )
