"""Main-memory R-tree over moving points.

This is the comparison baseline of the paper's §5.4, re-implemented from
scratch (the paper used the UCR Spatial Index Library):

* Guttman insertion with quadratic split;
* deletion with tree condensation and orphan re-insertion;
* STR bulk loading for the "R-tree overhaul" maintenance strategy, which
  rebuilds the whole tree each cycle;
* the Lee et al. (VLDB 2003) *bottom-up update* path for moving points,
  which modifies the tree locally instead of doing a full delete+insert
  (see :meth:`RTree.update_bottom_up`);
* best-first exact k-NN search (MINDIST-ordered branch and bound).

Only points are indexed (the monitoring workload never stores extended
geometry), which keeps entries as bare object IDs.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError, IndexStateError, NotEnoughObjectsError
from ..core.answers import AnswerList
from ..obs.counters import CounterBlock
from .node import RNode


class RTreeCounters(CounterBlock):
    """Work counters for the best-first k-NN search.

    Always counted (one integer add per node popped / leaf scanned); the
    engine layer diffs the block per cycle and publishes the deltas as
    ``rtree.answer.*`` metrics when instrumentation is on.
    """

    FIELDS = ("nodes_visited", "leaves_scanned", "objects_scanned")
    __slots__ = FIELDS


class RTree:
    """A dynamic main-memory R-tree for 2D points.

    Parameters
    ----------
    max_entries:
        Node capacity ``M`` (default 32, a typical main-memory fanout).
    min_entries:
        Underflow threshold ``m``; defaults to ``max(2, M * 2 // 5)`` (the
        classic 40% fill guarantee).
    """

    def __init__(self, max_entries: int = 32, min_entries: Optional[int] = None) -> None:
        if max_entries < 4:
            raise ConfigurationError(f"max_entries must be >= 4, got {max_entries}")
        self.max_entries = max_entries
        self.min_entries = (
            max(2, max_entries * 2 // 5) if min_entries is None else min_entries
        )
        if not 1 <= self.min_entries <= max_entries // 2:
            raise ConfigurationError(
                f"min_entries={self.min_entries} must be in [1, max_entries/2]"
            )
        self._root = RNode(leaf=True)
        self._x: Dict[int, float] = {}
        self._y: Dict[int, float] = {}
        self._leaf_of: Dict[int, RNode] = {}
        self.counters = RTreeCounters()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._x)

    @property
    def height(self) -> int:
        """Number of levels (1 for a single leaf root)."""
        node = self._root
        levels = 1
        while not node.leaf:
            node = node.children[0]
            levels += 1
        return levels

    def position_of(self, object_id: int) -> Tuple[float, float]:
        return self._x[object_id], self._y[object_id]

    # ------------------------------------------------------------------
    # Insertion (Guttman, quadratic split)
    # ------------------------------------------------------------------
    def insert(self, object_id: int, x: float, y: float) -> None:
        """Insert one point; ``object_id`` must not already be present."""
        if object_id in self._x:
            raise IndexStateError(f"object {object_id} is already indexed")
        self._x[object_id] = x
        self._y[object_id] = y
        leaf = self._choose_leaf(self._root, x, y)
        leaf.ids.append(object_id)
        leaf.include_point(x, y)
        self._leaf_of[object_id] = leaf
        self._handle_overflow(leaf)
        self._adjust_upward(leaf.parent)

    def _choose_leaf(self, node: RNode, x: float, y: float) -> RNode:
        while not node.leaf:
            best = None
            best_enlargement = math.inf
            best_area = math.inf
            for child in node.children:
                enlargement = child.enlargement_for(x, y)
                area = child.area()
                if enlargement < best_enlargement or (
                    enlargement == best_enlargement and area < best_area
                ):
                    best = child
                    best_enlargement = enlargement
                    best_area = area
            assert best is not None
            node = best
        return node

    def _adjust_upward(self, node: Optional[RNode]) -> None:
        """Re-tighten MBRs from ``node`` to the root."""
        while node is not None:
            node.reset_mbr()
            for child in node.children:
                node.include_node(child)
            node = node.parent

    def _handle_overflow(self, node: RNode) -> None:
        while node.size() > self.max_entries:
            sibling = self._split_quadratic(node)
            parent = node.parent
            if parent is None:
                new_root = RNode(leaf=False)
                new_root.children.append(node)
                new_root.children.append(sibling)
                node.parent = new_root
                sibling.parent = new_root
                new_root.include_node(node)
                new_root.include_node(sibling)
                self._root = new_root
                return
            sibling.parent = parent
            parent.children.append(sibling)
            parent.reset_mbr()
            for child in parent.children:
                parent.include_node(child)
            node = parent

    # -- quadratic split ------------------------------------------------
    def _entry_rects(self, node: RNode) -> List[Tuple[float, float, float, float]]:
        if node.leaf:
            return [
                (self._x[i], self._y[i], self._x[i], self._y[i]) for i in node.ids
            ]
        return [(c.xlo, c.ylo, c.xhi, c.yhi) for c in node.children]

    def _split_quadratic(self, node: RNode) -> RNode:
        """Quadratic-cost split (Guttman); returns the new sibling."""
        rects = self._entry_rects(node)
        entries = list(node.ids) if node.leaf else list(node.children)
        seed_a, seed_b = _pick_seeds(rects)
        group_a = [seed_a]
        group_b = [seed_b]
        rect_a = list(rects[seed_a])
        rect_b = list(rects[seed_b])
        remaining = [i for i in range(len(entries)) if i not in (seed_a, seed_b)]
        min_fill = self.min_entries
        while remaining:
            # Force assignment when one group must take all the rest.
            if len(group_a) + len(remaining) == min_fill:
                for i in remaining:
                    group_a.append(i)
                    _grow(rect_a, rects[i])
                break
            if len(group_b) + len(remaining) == min_fill:
                for i in remaining:
                    group_b.append(i)
                    _grow(rect_b, rects[i])
                break
            index, prefer_a = _pick_next(remaining, rects, rect_a, rect_b)
            remaining.remove(index)
            if prefer_a:
                group_a.append(index)
                _grow(rect_a, rects[index])
            else:
                group_b.append(index)
                _grow(rect_b, rects[index])
        sibling = RNode(leaf=node.leaf, parent=node.parent)
        keep = [entries[i] for i in group_a]
        move = [entries[i] for i in group_b]
        if node.leaf:
            node.ids = keep  # type: ignore[assignment]
            sibling.ids = move  # type: ignore[assignment]
            for object_id in move:
                self._leaf_of[object_id] = sibling
        else:
            node.children = keep  # type: ignore[assignment]
            sibling.children = move  # type: ignore[assignment]
            for child in move:
                child.parent = sibling
        self._recompute_mbr(node)
        self._recompute_mbr(sibling)
        return sibling

    def _recompute_mbr(self, node: RNode) -> None:
        node.reset_mbr()
        if node.leaf:
            for object_id in node.ids:
                node.include_point(self._x[object_id], self._y[object_id])
        else:
            for child in node.children:
                node.include_node(child)

    # ------------------------------------------------------------------
    # Deletion with condensation
    # ------------------------------------------------------------------
    def delete(self, object_id: int) -> None:
        """Remove one point, condensing underfull nodes."""
        leaf = self._leaf_of.get(object_id)
        if leaf is None:
            raise IndexStateError(f"object {object_id} is not indexed")
        leaf.ids.remove(object_id)
        del self._leaf_of[object_id]
        del self._x[object_id]
        del self._y[object_id]
        self._condense(leaf)

    def _condense(self, node: RNode) -> None:
        orphan_leaves: List[RNode] = []
        while node.parent is not None:
            parent = node.parent
            if node.size() < self.min_entries:
                parent.children.remove(node)
                self._collect_leaves(node, orphan_leaves)
            else:
                self._recompute_mbr(node)
            node = parent
        self._recompute_mbr(self._root)
        for leaf in orphan_leaves:
            for object_id in leaf.ids:
                x = self._x[object_id]
                y = self._y[object_id]
                target = self._choose_leaf(self._root, x, y)
                target.ids.append(object_id)
                target.include_point(x, y)
                self._leaf_of[object_id] = target
                self._handle_overflow(target)
                self._adjust_upward(target.parent)
        # Shrink the root if it lost all but one child.
        while not self._root.leaf and len(self._root.children) == 1:
            self._root = self._root.children[0]
            self._root.parent = None

    def _collect_leaves(self, node: RNode, out: List[RNode]) -> None:
        if node.leaf:
            out.append(node)
            return
        for child in node.children:
            self._collect_leaves(child, out)

    # ------------------------------------------------------------------
    # Bottom-up update (Lee et al., VLDB 2003)
    # ------------------------------------------------------------------
    def update_bottom_up(self, object_id: int, x: float, y: float) -> str:
        """Move a point using the localized bottom-up path.

        Returns which path was taken, for instrumentation:

        * ``"in_place"`` — the new position is still inside the leaf MBR;
          only the stored coordinates change.
        * ``"local"`` — an ancestor's MBR contains the new position; the
          point is re-inserted into that subtree only.
        * ``"full"`` — no ancestor (but the root) contains it; standard
          top-down delete+insert.  The paper observes this becomes the
          common case under high volatility, which is why bottom-up loses
          to overhaul rebuilding for large populations (Fig. 18(b)).
        """
        leaf = self._leaf_of.get(object_id)
        if leaf is None:
            raise IndexStateError(f"object {object_id} is not indexed")
        self._x[object_id] = x
        self._y[object_id] = y
        if leaf.contains_point(x, y):
            return "in_place"
        # Remove from the current leaf (coordinates already updated).
        leaf.ids.remove(object_id)
        del self._leaf_of[object_id]
        self._recompute_mbr(leaf)
        # Climb until an ancestor MBR covers the new position.
        ancestor: Optional[RNode] = leaf.parent
        climbed: Optional[RNode] = leaf
        while ancestor is not None and not ancestor.contains_point(x, y):
            self._recompute_mbr(ancestor)
            climbed = ancestor
            ancestor = ancestor.parent
        path = "full" if ancestor is None else "local"
        subtree_root = self._root if ancestor is None else ancestor
        target = self._choose_leaf(subtree_root, x, y)
        target.ids.append(object_id)
        target.include_point(x, y)
        self._leaf_of[object_id] = target
        self._handle_overflow(target)
        self._adjust_upward(target.parent)
        # MBRs between the vacated leaf and the climb point may now be
        # loose; tighten the remaining path up to the root.
        self._adjust_upward(ancestor)
        # The vacated leaf may underflow; condense lazily only when empty
        # (full condensation on every move defeats the bottom-up purpose).
        if leaf.size() == 0 and leaf.parent is not None:
            self._condense(leaf)
        return path

    # ------------------------------------------------------------------
    # STR bulk load (overhaul rebuild)
    # ------------------------------------------------------------------
    def bulk_load(self, positions: np.ndarray) -> None:
        """Rebuild the whole tree with Sort-Tile-Recursive packing.

        Object IDs are the row indices of ``positions``.  This is the
        "R-tree overhaul" maintenance strategy: cheaper per cycle than
        issuing NP deletes + NP inserts once the population is volatile.
        """
        positions = np.asarray(positions, dtype=np.float64)
        n = len(positions)
        self._x = dict(enumerate(positions[:, 0].tolist()))
        self._y = dict(enumerate(positions[:, 1].tolist()))
        self._leaf_of = {}
        if n == 0:
            self._root = RNode(leaf=True)
            return
        capacity = self.max_entries
        order = np.argsort(positions[:, 0], kind="stable")
        n_leaves = math.ceil(n / capacity)
        n_slabs = math.ceil(math.sqrt(n_leaves))
        slab_size = math.ceil(n / n_slabs)
        leaves: List[RNode] = []
        for start in range(0, n, slab_size):
            slab = order[start : start + slab_size]
            slab = slab[np.argsort(positions[slab, 1], kind="stable")]
            for leaf_start in range(0, len(slab), capacity):
                chunk = slab[leaf_start : leaf_start + capacity]
                leaf = RNode(leaf=True)
                for object_id in chunk.tolist():
                    leaf.ids.append(object_id)
                    leaf.include_point(self._x[object_id], self._y[object_id])
                    self._leaf_of[object_id] = leaf
                leaves.append(leaf)
        self._root = self._pack_level(leaves)

    def _pack_level(self, nodes: List[RNode]) -> RNode:
        """Pack a level of nodes into parents until a single root remains."""
        while len(nodes) > 1:
            capacity = self.max_entries
            n_parents = math.ceil(len(nodes) / capacity)
            n_slabs = math.ceil(math.sqrt(n_parents))
            nodes.sort(key=lambda node: (node.xlo + node.xhi))
            slab_size = math.ceil(len(nodes) / n_slabs)
            parents: List[RNode] = []
            for start in range(0, len(nodes), slab_size):
                slab = sorted(
                    nodes[start : start + slab_size],
                    key=lambda node: (node.ylo + node.yhi),
                )
                for parent_start in range(0, len(slab), capacity):
                    parent = RNode(leaf=False)
                    for child in slab[parent_start : parent_start + capacity]:
                        child.parent = parent
                        parent.children.append(child)
                        parent.include_node(child)
                    parents.append(parent)
            nodes = parents
        root = nodes[0]
        root.parent = None
        return root

    # ------------------------------------------------------------------
    # k-NN search (best-first branch and bound)
    # ------------------------------------------------------------------
    def knn(self, qx: float, qy: float, k: int) -> AnswerList:
        """Exact k nearest neighbors, MINDIST-ordered best-first search."""
        if k > len(self._x):
            raise NotEnoughObjectsError(k, len(self._x))
        answers = AnswerList(k)
        counter = itertools.count()
        heap: List[Tuple[float, int, RNode]] = [
            (self._root.min_dist2(qx, qy), next(counter), self._root)
        ]
        xs = self._x
        ys = self._y
        counters = self.counters
        while heap:
            d2, _, node = heapq.heappop(heap)
            counters.nodes_visited += 1
            # Strict: a node whose MINDIST equals the current k-th distance
            # may still hold an equidistant lower-id candidate that wins
            # the (dist2, id) tie-break.
            if answers.full and d2 > answers.worst_dist2:
                break
            if node.leaf:
                counters.leaves_scanned += 1
                counters.objects_scanned += len(node.ids)
                for object_id in node.ids:
                    dx = xs[object_id] - qx
                    dy = ys[object_id] - qy
                    answers.offer(dx * dx + dy * dy, object_id)
            else:
                for child in node.children:
                    child_d2 = child.min_dist2(qx, qy)
                    if not answers.full or child_d2 <= answers.worst_dist2:
                        heapq.heappush(heap, (child_d2, next(counter), child))
        return answers

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check MBR containment, parent pointers, and the leaf map."""
        count = self._check_node(self._root, None)
        if count != len(self._x):
            raise IndexStateError(
                f"tree stores {count} points, expected {len(self._x)}"
            )

    def _check_node(self, node: RNode, parent: Optional[RNode]) -> int:
        if node.parent is not parent:
            raise IndexStateError("broken parent pointer")
        if node.leaf:
            for object_id in node.ids:
                if not node.contains_point(self._x[object_id], self._y[object_id]):
                    raise IndexStateError(
                        f"leaf MBR does not contain object {object_id}"
                    )
                if self._leaf_of.get(object_id) is not node:
                    raise IndexStateError(
                        f"leaf map is stale for object {object_id}"
                    )
            return len(node.ids)
        total = 0
        for child in node.children:
            if (
                child.xlo < node.xlo
                or child.ylo < node.ylo
                or child.xhi > node.xhi
                or child.yhi > node.yhi
            ):
                raise IndexStateError("child MBR escapes its parent MBR")
            total += self._check_node(child, node)
        return total


# ----------------------------------------------------------------------
# Quadratic-split helpers (module level: they need no tree state)
# ----------------------------------------------------------------------
def _pick_seeds(rects: Sequence[Tuple[float, float, float, float]]) -> Tuple[int, int]:
    """The pair of entries wasting the most area when grouped together."""
    worst = -math.inf
    seeds = (0, 1)
    for a in range(len(rects)):
        ax0, ay0, ax1, ay1 = rects[a]
        for b in range(a + 1, len(rects)):
            bx0, by0, bx1, by1 = rects[b]
            whole = (max(ax1, bx1) - min(ax0, bx0)) * (max(ay1, by1) - min(ay0, by0))
            waste = whole - (ax1 - ax0) * (ay1 - ay0) - (bx1 - bx0) * (by1 - by0)
            if waste > worst:
                worst = waste
                seeds = (a, b)
    return seeds


def _grow(rect: List[float], other: Tuple[float, float, float, float]) -> None:
    if other[0] < rect[0]:
        rect[0] = other[0]
    if other[1] < rect[1]:
        rect[1] = other[1]
    if other[2] > rect[2]:
        rect[2] = other[2]
    if other[3] > rect[3]:
        rect[3] = other[3]


def _enlargement(rect: List[float], other: Tuple[float, float, float, float]) -> float:
    area = (rect[2] - rect[0]) * (rect[3] - rect[1])
    grown = (max(rect[2], other[2]) - min(rect[0], other[0])) * (
        max(rect[3], other[3]) - min(rect[1], other[1])
    )
    return grown - area


def _pick_next(
    remaining: Sequence[int],
    rects: Sequence[Tuple[float, float, float, float]],
    rect_a: List[float],
    rect_b: List[float],
) -> Tuple[int, bool]:
    """The entry with the strongest group preference, and that preference."""
    best_index = remaining[0]
    best_diff = -1.0
    prefer_a = True
    for i in remaining:
        da = _enlargement(rect_a, rects[i])
        db = _enlargement(rect_b, rects[i])
        diff = abs(da - db)
        if diff > best_diff:
            best_diff = diff
            best_index = i
            prefer_a = da < db
    return best_index, prefer_a
