"""Main-memory R-tree baseline (paper §5.4)."""

from .node import RNode
from .rtree import RTree

__all__ = ["RNode", "RTree"]
