"""Terminal visualisation: ASCII density plots of point sets.

The paper's Figs. 9 and 10 are scatter plots of the datasets; in a
text-only environment the closest faithful rendering is a character
density map.  Used by ``examples/`` and by ``python -m repro.bench fig09``
consumers who want to *see* the skew.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .errors import ConfigurationError

# Darkness ramp, lightest to densest.
_DEFAULT_RAMP = " .:-=+*#%@"


def density_plot(
    points: np.ndarray,
    width: int = 60,
    height: int = 24,
    ramp: str = _DEFAULT_RAMP,
    border: bool = True,
) -> str:
    """Render a point set in the unit square as an ASCII density map.

    Each character cell's symbol encodes the count of points inside it,
    scaled so the densest cell uses the last ramp character.  The y axis
    points up, matching the paper's plots.
    """
    if width < 1 or height < 1:
        raise ConfigurationError("width and height must be >= 1")
    if len(ramp) < 2:
        raise ConfigurationError("ramp needs at least two characters")
    points = np.asarray(points, dtype=np.float64)
    counts = np.zeros((height, width), dtype=np.intp)
    if len(points):
        ii = np.clip((points[:, 0] * width).astype(np.intp), 0, width - 1)
        jj = np.clip((points[:, 1] * height).astype(np.intp), 0, height - 1)
        np.add.at(counts, (jj, ii), 1)
    peak = counts.max()
    lines = []
    for j in range(height - 1, -1, -1):  # top row = largest y
        if peak == 0:
            row = ramp[0] * width
        else:
            # Map counts 0..peak onto the ramp; any nonzero count gets at
            # least the second character so sparse points stay visible.
            levels = np.where(
                counts[j] == 0,
                0,
                1 + (counts[j] * (len(ramp) - 2)) // max(1, peak),
            )
            row = "".join(ramp[int(level)] for level in levels)
        lines.append(row)
    if border:
        top = "+" + "-" * width + "+"
        return "\n".join([top] + ["|" + line + "|" for line in lines] + [top])
    return "\n".join(lines)


def side_by_side(plots: Sequence[str], gap: int = 2, labels: Optional[Sequence[str]] = None) -> str:
    """Join several equal-height ASCII plots horizontally."""
    if not plots:
        return ""
    split = [plot.splitlines() for plot in plots]
    rows = max(len(lines) for lines in split)
    widths = [max((len(line) for line in lines), default=0) for lines in split]
    out = []
    if labels is not None:
        if len(labels) != len(plots):
            raise ConfigurationError("labels must match plots")
        out.append(
            (" " * gap).join(
                label[: widths[i]].center(widths[i]) for i, label in enumerate(labels)
            )
        )
    for row in range(rows):
        pieces = []
        for i, lines in enumerate(split):
            piece = lines[row] if row < len(lines) else ""
            pieces.append(piece.ljust(widths[i]))
        out.append((" " * gap).join(pieces))
    return "\n".join(out)
