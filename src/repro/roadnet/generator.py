"""Synthetic road-network generator.

Substitute for the paper's Illinois roadmap data (see DESIGN.md).  The
generator produces a connected planar-ish network with the statistical
properties that matter for the monitoring experiments:

* intersections on a jittered lattice (road grids dominate US road maps);
* most lattice-neighbor segments present, some missing (broken blocks);
* a few diagonal connectors (highways);
* degree concentrated on 3–4 with a tail of higher-degree "major
  intersections".

Objects constrained to such a network concentrate on a one-dimensional
subset of the plane, giving a point distribution that is more skewed than
uniform but far less skewed than the Gaussian-cluster datasets — exactly
where the paper places the Illinois data in Fig. 17.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from .network import RoadNetwork


def synthetic_road_network(
    grid_size: int = 20,
    jitter: float = 0.25,
    keep_probability: float = 0.85,
    n_diagonals: Optional[int] = None,
    seed: Optional[int] = None,
) -> RoadNetwork:
    """Generate a connected synthetic road network in the unit square.

    Parameters
    ----------
    grid_size:
        Lattice dimension; the network has ``grid_size**2`` intersections.
    jitter:
        Node displacement as a fraction of the lattice spacing (0 = perfect
        grid).
    keep_probability:
        Probability that each lattice-neighbor road segment exists.
    n_diagonals:
        Number of random diagonal connectors; defaults to ``grid_size``.
    seed:
        Seed for the generator.
    """
    if grid_size < 2:
        raise ConfigurationError(f"grid_size must be >= 2, got {grid_size}")
    if not 0.0 <= jitter < 0.5:
        raise ConfigurationError(f"jitter={jitter!r} must be in [0, 0.5)")
    if not 0.0 < keep_probability <= 1.0:
        raise ConfigurationError(
            f"keep_probability={keep_probability!r} must be in (0, 1]"
        )
    rng = np.random.default_rng(seed)
    spacing = 1.0 / grid_size
    # Jittered lattice positions, kept inside the unit square.
    base = (np.arange(grid_size) + 0.5) * spacing
    gx, gy = np.meshgrid(base, base, indexing="ij")
    positions = np.stack([gx.ravel(), gy.ravel()], axis=1)
    positions = positions + rng.uniform(
        -jitter * spacing, jitter * spacing, size=positions.shape
    )
    positions = np.clip(positions, 0.0, 1.0 - 1e-9)

    def node_id(i: int, j: int) -> int:
        return i * grid_size + j

    network = RoadNetwork(positions, edges=())
    # Lattice-neighbor segments, each kept with probability p.
    for i in range(grid_size):
        for j in range(grid_size):
            if i + 1 < grid_size and rng.random() < keep_probability:
                network.add_edge(node_id(i, j), node_id(i + 1, j))
            if j + 1 < grid_size and rng.random() < keep_probability:
                network.add_edge(node_id(i, j), node_id(i, j + 1))
    # Diagonal connectors between nearby non-adjacent nodes.
    diagonals = grid_size if n_diagonals is None else n_diagonals
    for _ in range(diagonals):
        i = int(rng.integers(0, grid_size - 1))
        j = int(rng.integers(0, grid_size - 1))
        network.add_edge(node_id(i, j), node_id(i + 1, j + 1))
    _connect_components(network, grid_size)
    return network


def _connect_components(network: RoadNetwork, grid_size: int) -> None:
    """Add lattice edges until the network is connected (union-find)."""
    n = network.n_nodes
    parent = list(range(n))

    def find(a: int) -> int:
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    for u, v in network.edges():
        union(u, v)

    def node_id(i: int, j: int) -> int:
        return i * grid_size + j

    # Sweep lattice neighbors, adding any edge that merges two components.
    for i in range(grid_size):
        for j in range(grid_size):
            a = node_id(i, j)
            if i + 1 < grid_size:
                b = node_id(i + 1, j)
                if find(a) != find(b):
                    network.add_edge(a, b)
                    union(a, b)
            if j + 1 < grid_size:
                b = node_id(i, j + 1)
                if find(a) != find(b):
                    network.add_edge(a, b)
                    union(a, b)
