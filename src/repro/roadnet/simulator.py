"""Objects moving along a road network (paper §5.2, Fig. 10).

"Objects start near the major intersections, and then randomly move along
the roads."  Each object carries its current edge ``(u, v)``, its offset
along the edge, and a per-object speed.  At every cycle the object advances
along its edge; on reaching an intersection it picks a random incident road
(avoiding an immediate U-turn when possible) and continues.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..errors import ConfigurationError
from .generator import synthetic_road_network
from .network import RoadNetwork


class RoadNetworkModel:
    """Road-constrained motion model with the same ``step`` API as
    :class:`repro.motion.RandomWalkModel`.

    Parameters
    ----------
    network:
        The road network; if omitted a default synthetic one is generated.
    n:
        Population size.
    vmax:
        Maximum per-cycle travel distance; per-object speeds are drawn
        uniformly from ``[vmax / 2, vmax]``.
    start_near_major:
        Fraction of objects seeded at the highest-degree intersections
        (the rest start at random nodes).
    """

    def __init__(
        self,
        n: int,
        vmax: float = 0.005,
        network: Optional[RoadNetwork] = None,
        start_near_major: float = 0.8,
        seed: Optional[int] = None,
    ) -> None:
        if n < 0:
            raise ConfigurationError(f"n must be >= 0, got {n}")
        if vmax <= 0.0:
            raise ConfigurationError(f"vmax must be > 0, got {vmax}")
        if not 0.0 <= start_near_major <= 1.0:
            raise ConfigurationError(
                f"start_near_major={start_near_major!r} must be in [0, 1]"
            )
        self._rng = np.random.default_rng(seed)
        self.network = (
            network
            if network is not None
            else synthetic_road_network(seed=int(self._rng.integers(0, 2**31)))
        )
        if self.network.n_edges == 0:
            raise ConfigurationError("the road network has no edges")
        self.n = n
        self.vmax = vmax
        self._speed = self._rng.uniform(vmax / 2.0, vmax, size=n)
        self._from: List[int] = []
        self._to: List[int] = []
        self._offset = np.zeros(n)
        self._seed_objects(start_near_major)

    def _seed_objects(self, start_near_major: float) -> None:
        """Place objects on edges incident to their start intersections."""
        network = self.network
        n_major = max(1, network.n_nodes // 20)
        major = network.major_intersections(n_major)
        for object_id in range(self.n):
            if self._rng.random() < start_near_major:
                node = int(major[self._rng.integers(0, len(major))])
            else:
                node = int(self._rng.integers(0, network.n_nodes))
            neighbors = network.adjacency[node]
            while not neighbors:  # isolated nodes cannot host traffic
                node = int(self._rng.integers(0, network.n_nodes))
                neighbors = network.adjacency[node]
            nxt = int(neighbors[self._rng.integers(0, len(neighbors))])
            self._from.append(node)
            self._to.append(nxt)
            # Start a short way down the road (never past its far end).
            length = network.edge_length(node, nxt)
            self._offset[object_id] = float(self._rng.random()) * 0.2 * length

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def positions(self) -> np.ndarray:
        """Current snapshot of all object positions, shape ``(n, 2)``."""
        out = np.empty((self.n, 2))
        network = self.network
        for object_id in range(self.n):
            u = self._from[object_id]
            v = self._to[object_id]
            length = network.edge_length(u, v)
            fraction = 0.0 if length == 0.0 else min(
                1.0, self._offset[object_id] / length
            )
            out[object_id] = network.point_on_edge(u, v, fraction)
        return out

    def step(self, positions: Optional[np.ndarray] = None) -> np.ndarray:
        """Advance every object one cycle and return the new snapshot.

        ``positions`` is accepted (and ignored) so the model is drop-in
        compatible with :class:`repro.motion.RandomWalkModel.step`.
        """
        network = self.network
        rng = self._rng
        for object_id in range(self.n):
            travel = self._speed[object_id]
            offset = self._offset[object_id] + travel
            u = self._from[object_id]
            v = self._to[object_id]
            length = network.edge_length(u, v)
            # Cross as many intersections as the travel distance covers.
            while offset >= length:
                offset -= length
                u, v = v, self._next_road(u, v)
                length = network.edge_length(u, v)
            self._from[object_id] = u
            self._to[object_id] = v
            self._offset[object_id] = offset
        return self.positions()

    def _next_road(self, came_from: int, at_node: int) -> int:
        """Pick the next road at an intersection, avoiding U-turns if possible."""
        neighbors = self.network.adjacency[at_node]
        if len(neighbors) == 1:
            return neighbors[0]
        choices = [nbr for nbr in neighbors if nbr != came_from]
        return choices[self._rng.integers(0, len(choices))]

    def run(self, positions: Optional[np.ndarray] = None, cycles: int = 1):
        """Yield ``cycles`` successive snapshots."""
        for _ in range(cycles):
            yield self.step()


def roadnet_dataset(
    n: int, warmup_cycles: int = 50, seed: Optional[int] = None
) -> np.ndarray:
    """A one-shot road-network point distribution (Fig. 10 analogue).

    Runs the simulator for ``warmup_cycles`` so objects spread out from the
    major intersections along the roads.
    """
    model = RoadNetworkModel(n, seed=seed)
    snapshot = model.positions()
    for _ in range(warmup_cycles):
        snapshot = model.step()
    return snapshot
