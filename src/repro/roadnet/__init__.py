"""Road-network substrate (substitute for the paper's Illinois roadmap)."""

from .generator import synthetic_road_network
from .network import RoadNetwork
from .simulator import RoadNetworkModel, roadnet_dataset

__all__ = [
    "RoadNetwork",
    "RoadNetworkModel",
    "roadnet_dataset",
    "synthetic_road_network",
]
