"""Road-network graph used by the road-constrained motion simulation.

A :class:`RoadNetwork` is an undirected planar graph embedded in the unit
square: intersections are nodes with coordinates, road segments are edges
with Euclidean lengths.  It is deliberately minimal — just what the
simulator in :mod:`repro.roadnet.simulator` needs: adjacency, edge
interpolation, and degree statistics ("objects start near the major
intersections", paper §5.2).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError

Edge = Tuple[int, int]


class RoadNetwork:
    """An undirected embedded graph of intersections and road segments."""

    def __init__(
        self, node_positions: np.ndarray, edges: Iterable[Edge]
    ) -> None:
        node_positions = np.asarray(node_positions, dtype=np.float64)
        if node_positions.ndim != 2 or node_positions.shape[1] != 2:
            raise ConfigurationError("node_positions must be an (n, 2) array")
        self.node_positions = node_positions
        n = len(node_positions)
        self.adjacency: List[List[int]] = [[] for _ in range(n)]
        self._edge_set = set()
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int) -> None:
        n = len(self.node_positions)
        if not (0 <= u < n and 0 <= v < n):
            raise ConfigurationError(f"edge ({u}, {v}) references unknown nodes")
        if u == v:
            raise ConfigurationError(f"self-loop at node {u} is not a road")
        key = (u, v) if u < v else (v, u)
        if key in self._edge_set:
            return
        self._edge_set.add(key)
        self.adjacency[u].append(v)
        self.adjacency[v].append(u)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return len(self.node_positions)

    @property
    def n_edges(self) -> int:
        return len(self._edge_set)

    def edges(self) -> Sequence[Edge]:
        return sorted(self._edge_set)

    def degree(self, node: int) -> int:
        return len(self.adjacency[node])

    def degrees(self) -> np.ndarray:
        return np.asarray([len(nbrs) for nbrs in self.adjacency], dtype=np.intp)

    def edge_length(self, u: int, v: int) -> float:
        ax, ay = self.node_positions[u]
        bx, by = self.node_positions[v]
        return math.hypot(bx - ax, by - ay)

    def point_on_edge(self, u: int, v: int, fraction: float) -> Tuple[float, float]:
        """Point at ``fraction`` in [0, 1] of the way from ``u`` to ``v``."""
        ax, ay = self.node_positions[u]
        bx, by = self.node_positions[v]
        return ax + (bx - ax) * fraction, ay + (by - ay) * fraction

    def is_connected(self) -> bool:
        """Whether every node is reachable from node 0 (BFS)."""
        n = self.n_nodes
        if n == 0:
            return True
        seen = [False] * n
        stack = [0]
        seen[0] = True
        reached = 1
        while stack:
            node = stack.pop()
            for nbr in self.adjacency[node]:
                if not seen[nbr]:
                    seen[nbr] = True
                    reached += 1
                    stack.append(nbr)
        return reached == n

    def major_intersections(self, count: int) -> np.ndarray:
        """IDs of the ``count`` highest-degree nodes (ties by ID)."""
        degrees = self.degrees()
        order = np.lexsort((np.arange(self.n_nodes), -degrees))
        return order[:count]
