"""Exception hierarchy for the ``repro`` package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch one base class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An index, workload, or monitor was configured with invalid parameters."""


class OutOfRegionError(ReproError):
    """A point lies outside the unit-square region of interest ``[0, 1)^2``."""

    def __init__(self, x: float, y: float) -> None:
        super().__init__(f"point ({x!r}, {y!r}) lies outside the unit square [0, 1)^2")
        self.x = x
        self.y = y


class NotEnoughObjectsError(ReproError):
    """A k-NN query was posed against a population with fewer than k objects."""

    def __init__(self, k: int, population: int) -> None:
        super().__init__(
            f"cannot answer a {k}-NN query over a population of {population} objects"
        )
        self.k = k
        self.population = population


class IndexStateError(ReproError):
    """An index operation was attempted in an invalid state.

    Examples: incremental maintenance before an initial build, removing an
    object from a cell that does not contain it.
    """
