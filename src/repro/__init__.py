"""repro — grid-based continuous k-NN monitoring over moving objects.

A from-scratch reproduction of Yu, Pu & Koudas, *Monitoring k-Nearest
Neighbor Queries Over Moving Objects* (ICDE 2005).

Quickstart::

    import numpy as np
    from repro import MonitoringSystem, make_dataset, make_queries, RandomWalkModel

    objects = make_dataset("uniform", n=10_000, seed=7)
    queries = make_queries(100, seed=11)
    motion = RandomWalkModel(vmax=0.005, seed=13)

    system = MonitoringSystem.object_indexing(k=10, queries=queries)
    system.load(objects)
    for _ in range(10):
        objects = motion.step(objects)
        answers = system.tick(objects)   # exact k-NN per query, timestamped
"""

from .core import (
    METHOD_CONFIGS,
    AnswerDelta,
    AnswerList,
    CircleRegion,
    CycleStats,
    DeltaTracker,
    DynamicPopulation,
    GNNMonitor,
    GroupQuery,
    HierarchicalObjectIndex,
    KNNJoinMonitor,
    KeyedAnswer,
    MethodConfig,
    MonitoringService,
    MonitoringSystem,
    ObjectIndex,
    PositionBuffer,
    QueryAnswer,
    QueryIndex,
    RKNNMonitor,
    RangeMonitor,
    Recommendation,
    RectRegion,
    SelfJoinMonitor,
    ShardedConfig,
    WorkloadProfile,
    answers_equal,
    brute_force_knn,
    calibrate,
    optimal_cell_size,
    pr_exit,
    recommend,
)
from .engines import (
    BaseEngine,
    CyclePipeline,
    CycleTiming,
    FastGridEngine,
    SnapshotIndex,
    build_system,
    make_snapshot,
    snapshot_knn,
    snapshot_range,
)
from .errors import (
    ConfigurationError,
    IndexStateError,
    NotEnoughObjectsError,
    OutOfRegionError,
    ReproError,
)
from .grid import Grid2D
from .motion import (
    DispersionProcess,
    RandomWalkModel,
    make_dataset,
    make_queries,
)
from .roadnet import (
    RoadNetwork,
    RoadNetworkModel,
    roadnet_dataset,
    synthetic_road_network,
)
from .motion.linear import LinearMotionModel
from .obs import (
    NULL_REGISTRY,
    MetricsRegistry,
    NullRegistry,
    Tracer,
    cycle_report,
    prometheus_text,
    run_validation,
    write_history_jsonl,
)
from .rtree import RTree
from .service import MonitoringSession
from .shard import ShardedGridEngine
from .state import WorldSnapshot, WorldStore
from .tprtree import TPREngine, TPRTree
from .viz import density_plot, side_by_side

__version__ = "1.0.0"

__all__ = [
    "AnswerDelta",
    "AnswerList",
    "BaseEngine",
    "CircleRegion",
    "ConfigurationError",
    "CyclePipeline",
    "CycleStats",
    "CycleTiming",
    "DeltaTracker",
    "DispersionProcess",
    "DynamicPopulation",
    "FastGridEngine",
    "GNNMonitor",
    "Grid2D",
    "GroupQuery",
    "HierarchicalObjectIndex",
    "IndexStateError",
    "KNNJoinMonitor",
    "KeyedAnswer",
    "LinearMotionModel",
    "METHOD_CONFIGS",
    "MethodConfig",
    "MetricsRegistry",
    "MonitoringService",
    "MonitoringSession",
    "MonitoringSystem",
    "NULL_REGISTRY",
    "NotEnoughObjectsError",
    "NullRegistry",
    "ObjectIndex",
    "OutOfRegionError",
    "PositionBuffer",
    "QueryAnswer",
    "QueryIndex",
    "RKNNMonitor",
    "RTree",
    "RangeMonitor",
    "Recommendation",
    "RectRegion",
    "SelfJoinMonitor",
    "ShardedConfig",
    "ShardedGridEngine",
    "SnapshotIndex",
    "TPREngine",
    "TPRTree",
    "Tracer",
    "WorkloadProfile",
    "WorldSnapshot",
    "WorldStore",
    "RandomWalkModel",
    "ReproError",
    "RoadNetwork",
    "RoadNetworkModel",
    "answers_equal",
    "brute_force_knn",
    "build_system",
    "calibrate",
    "cycle_report",
    "density_plot",
    "make_dataset",
    "make_queries",
    "make_snapshot",
    "side_by_side",
    "snapshot_knn",
    "snapshot_range",
    "optimal_cell_size",
    "pr_exit",
    "prometheus_text",
    "recommend",
    "roadnet_dataset",
    "run_validation",
    "synthetic_road_network",
    "write_history_jsonl",
    "__version__",
]
