"""Command-line entry point: ``python -m repro.bench``.

Examples::

    python -m repro.bench fig11a              # reproduce one figure
    python -m repro.bench all --scale 0.5     # everything, half-size
    python -m repro.bench all --markdown out.md
    python -m repro.bench fastgrid --scale 5  # fast CSR engine vs paper
                                              # engines, with the per-stage
                                              # (snapshot_csr/radii/gather/
                                              # select) timing breakdown
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .experiments import EXPERIMENTS, run_experiment


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Reproduce the evaluation figures of Yu, Pu & Koudas "
        "(ICDE 2005) on the Python reimplementation.",
    )
    parser.add_argument(
        "figures",
        nargs="+",
        help="figure ids to run (e.g. fig11a fig17), 'fastgrid' for the "
        "vectorized CSR engine comparison (prints its per-stage timing "
        "breakdown), or 'all'",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload scale factor relative to the repository defaults "
        "(1.0 = NP 20K / NQ 1K reference; the paper used NP 100K / NQ 5K)",
    )
    parser.add_argument(
        "--markdown",
        metavar="PATH",
        default=None,
        help="also append markdown renderings of the results to PATH",
    )
    parser.add_argument(
        "--csv",
        metavar="PATH",
        default=None,
        help="also append the raw result rows as CSV to PATH",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments and exit"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list:
        for figure, experiment in sorted(EXPERIMENTS.items()):
            doc = (experiment.__doc__ or "").strip().splitlines()[0]
            print(f"{figure:8s} {doc}")
        return 0
    figures = (
        sorted(EXPERIMENTS) if "all" in args.figures else list(args.figures)
    )
    markdown_chunks: List[str] = []
    csv_chunks: List[str] = []
    for figure in figures:
        started = time.perf_counter()
        result = run_experiment(figure, scale=args.scale)
        elapsed = time.perf_counter() - started
        print(result.render())
        print(f"[{figure} completed in {elapsed:.1f}s]")
        print()
        markdown_chunks.append(result.render_markdown())
        csv_chunks.append(result.render_csv())
    if args.markdown:
        with open(args.markdown, "a", encoding="utf-8") as handle:
            handle.write("\n".join(markdown_chunks))
        print(f"markdown appended to {args.markdown}")
    if args.csv:
        with open(args.csv, "a", encoding="utf-8") as handle:
            handle.write("".join(csv_chunks))
        print(f"csv appended to {args.csv}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
