"""Result containers and rendering (text / markdown / CSV) for experiments."""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence


@dataclass
class ExperimentResult:
    """One figure's reproduction: a table of measured series.

    ``columns`` names the table columns; ``rows`` holds one entry per
    sweep point.  ``expectation`` states the paper's qualitative claim and
    ``findings`` records what the measurement showed (filled by the
    experiment function so the CLI and EXPERIMENTS.md agree).
    """

    figure: str
    title: str
    columns: List[str]
    rows: List[List[Any]] = field(default_factory=list)
    expectation: str = ""
    findings: List[str] = field(default_factory=list)
    # Per-stage timing breakdowns keyed by engine label, each mapping a
    # stage name to mean seconds per cycle (filled by engines that expose
    # stage hooks, e.g. the fast CSR engine's snapshot_csr/radii/gather/
    # select split).
    stage_breakdown: Dict[str, Dict[str, float]] = field(default_factory=dict)
    # Mean per-cycle observability counters keyed by engine label (filled
    # by experiments run with instrument=True; empty otherwise).
    counters: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values for {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def column(self, name: str) -> List[Any]:
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def render(self) -> str:
        """Render as an aligned plain-text table with the narrative."""
        lines = [f"== {self.figure}: {self.title} =="]
        if self.expectation:
            lines.append(f"paper: {self.expectation}")
        lines.append("")
        lines.append(format_table(self.columns, self.rows))
        if self.stage_breakdown:
            lines.append("")
            lines.append(self.render_stage_breakdown())
        if self.counters:
            lines.append("")
            lines.append(self.render_counters())
        if self.findings:
            lines.append("")
            for finding in self.findings:
                lines.append(f"measured: {finding}")
        return "\n".join(lines)

    def render_counters(self) -> str:
        """Mean per-cycle counters per engine as ``engine counter mean`` rows."""
        rows = [
            [label, name, value]
            for label, counters in self.counters.items()
            for name, value in sorted(counters.items())
        ]
        return format_table(["engine", "counter", "mean/cycle"], rows)

    def render_stage_breakdown(self) -> str:
        """Align the per-stage timing breakdowns as a small table."""
        stages: List[str] = []
        for breakdown in self.stage_breakdown.values():
            for stage in breakdown:
                if stage not in stages:
                    stages.append(stage)
        columns = ["engine"] + [f"{s}_s" for s in stages] + ["total_s"]
        rows = [
            [label]
            + [breakdown.get(s, 0.0) for s in stages]
            + [sum(breakdown.values())]
            for label, breakdown in self.stage_breakdown.items()
        ]
        return format_table(columns, rows)

    def render_markdown(self) -> str:
        """Render as GitHub-flavored markdown (for EXPERIMENTS.md)."""
        lines = [f"### {self.figure} — {self.title}", ""]
        if self.expectation:
            lines.append(f"*Paper:* {self.expectation}")
            lines.append("")
        header = "| " + " | ".join(self.columns) + " |"
        separator = "|" + "|".join(["---"] * len(self.columns)) + "|"
        lines.append(header)
        lines.append(separator)
        for row in self.rows:
            lines.append("| " + " | ".join(_fmt(v) for v in row) + " |")
        if self.stage_breakdown:
            lines.append("")
            lines.append("```")
            lines.append(self.render_stage_breakdown())
            lines.append("```")
        if self.findings:
            lines.append("")
            for finding in self.findings:
                lines.append(f"*Measured:* {finding}")
        lines.append("")
        return "\n".join(lines)


    def render_csv(self) -> str:
        """Render the rows as CSV with a leading ``figure`` column.

        Concatenating several experiments' CSV output yields one tidy
        long-format file suitable for plotting tools.
        """
        out = io.StringIO()
        writer = csv.writer(out)
        writer.writerow(["figure"] + self.columns)
        for row in self.rows:
            writer.writerow([self.figure] + list(row))
        return out.getvalue()

    def to_records(self) -> List[Dict[str, Any]]:
        """The rows as dictionaries keyed by column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) < 0.001 or abs(value) >= 100_000:
            return f"{value:.3e}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(columns: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Align a small table for terminal output."""
    rendered = [[_fmt(v) for v in row] for row in rows]
    widths = [len(c) for c in columns]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(columns))
    rule = "  ".join("-" * w for w in widths)
    body = [
        "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        for row in rendered
    ]
    return "\n".join([header, rule, *body])
