"""Per-figure reproduction experiments (paper §5).

Each ``fig*`` function reproduces one figure of the paper's evaluation: it
generates the figure's workload, runs the monitored methods, and returns an
:class:`~repro.bench.results.ExperimentResult` with the same series the
paper plots plus derived shape checks (fitted exponents, crossovers).

Sizes are scaled down from the paper's C++ testbed (NP up to 1M, NQ up to
10K) to CPython-friendly defaults; pass ``scale`` > 1 to enlarge every
population proportionally.  All claims verified are *relative* (who wins,
where crossovers fall, growth exponents) — see DESIGN.md.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from ..core.cost_model import fit_power_law, linearity_r2, pr_exit
from ..core.hierarchical import HierarchicalObjectIndex
from ..core.monitor import MonitoringSystem
from ..motion import (
    DispersionProcess,
    RandomWalkModel,
    make_dataset,
    make_queries,
    skewness_statistic,
)
from ..roadnet import roadnet_dataset, synthetic_road_network
from .results import ExperimentResult
from ..engines.registry import build_system
from .runner import measure_cycles, measure_method

# Reference workload sizes (paper: NP=100_000, NQ=5_000, k=10, vmax=0.005).
NP0 = 20_000
NQ0 = 1_000
K0 = 10
VMAX0 = 0.005
CYCLES0 = 3
SEED = 7


def _n(base: float, scale: float) -> int:
    return max(1, int(round(base * scale)))


# ----------------------------------------------------------------------
# Figures 9 and 10: the datasets themselves
# ----------------------------------------------------------------------
def fig09_datasets(scale: float = 1.0) -> ExperimentResult:
    """Fig. 9: uniform / skewed / hi-skewed datasets (skew statistics)."""
    n = _n(NP0, scale)
    result = ExperimentResult(
        "fig09",
        "Datasets of different degrees of skewness",
        ["dataset", "n", "skewness", "max_cell_share"],
        expectation="three same-size datasets with increasing skew: "
        "uniform < skewed (4 clusters, std 0.05, 1% uniform) < "
        "hi-skewed (10 clusters, std 0.02)",
    )
    stats = {}
    for name in ("uniform", "skewed", "hi_skewed"):
        points = make_dataset(name, n, seed=SEED)
        skew = skewness_statistic(points)
        # Share of the population in the single densest of 32x32 cells.
        ii = np.clip((points[:, 0] * 32).astype(int), 0, 31)
        jj = np.clip((points[:, 1] * 32).astype(int), 0, 31)
        counts = np.bincount(jj * 32 + ii, minlength=32 * 32)
        share = float(counts.max()) / n
        stats[name] = skew
        result.add_row(name, n, skew, share)
    ordered = stats["uniform"] < stats["skewed"] < stats["hi_skewed"]
    result.findings.append(
        f"skew ordering uniform < skewed < hi_skewed holds: {ordered}"
    )
    return result


def fig10_roadnet(scale: float = 1.0) -> ExperimentResult:
    """Fig. 10: snapshot of the road-network simulation (substitute data)."""
    n = _n(NP0 / 4, scale)
    network = synthetic_road_network(seed=SEED)
    points = roadnet_dataset(n, warmup_cycles=40, seed=SEED)
    uniform = skewness_statistic(make_dataset("uniform", n, seed=SEED))
    skewed = skewness_statistic(make_dataset("skewed", n, seed=SEED))
    road = skewness_statistic(points)
    result = ExperimentResult(
        "fig10",
        "Road-network simulation snapshot (synthetic Illinois substitute)",
        ["metric", "value"],
        expectation="objects concentrate along roads; skew lies between "
        "the uniform and the clustered synthetic data (per Fig. 17 text)",
    )
    result.add_row("intersections", network.n_nodes)
    result.add_row("road_segments", network.n_edges)
    result.add_row("objects", n)
    result.add_row("skewness_uniform", uniform)
    result.add_row("skewness_roadnet", road)
    result.add_row("skewness_skewed", skewed)
    result.findings.append(
        f"uniform < roadnet < skewed skew ordering holds: {uniform < road < skewed}"
    )
    return result


# ----------------------------------------------------------------------
# Figure 11: overhaul Object-Indexing scalability
# ----------------------------------------------------------------------
def fig11a_overhaul_vs_nq(scale: float = 1.0) -> ExperimentResult:
    """Fig. 11(a): overhaul computation time is linear in NQ."""
    n_objects = _n(NP0, scale)
    result = ExperimentResult(
        "fig11a",
        "Overhaul Object-Indexing vs number of queries",
        ["n_queries", "total_s"],
        expectation="computation time linear w.r.t. NQ (NP fixed, k=10)",
    )
    for n_queries in [_n(f * NQ0, scale) for f in (0.25, 0.5, 1.0, 2.0, 4.0)]:
        timing = measure_method(
            "object_overhaul", n_objects, n_queries, k=K0, cycles=CYCLES0
        )
        result.add_row(n_queries, timing.total_time)
    r2 = linearity_r2(result.column("n_queries"), result.column("total_s"))
    result.findings.append(f"linear fit R^2 = {r2:.4f}")
    return result


def fig11b_overhaul_vs_np(scale: float = 1.0) -> ExperimentResult:
    """Fig. 11(b): index building linear in NP, query answering ~constant."""
    n_queries = _n(NQ0 / 2, scale)
    result = ExperimentResult(
        "fig11b",
        "Overhaul Object-Indexing vs number of objects",
        ["n_objects", "index_s", "answer_s"],
        expectation="index building linear in NP; query answering nearly "
        "constant in NP (uniform data, Theorem 1)",
    )
    for n_objects in [_n(f * NP0, scale) for f in (0.25, 0.5, 1.0, 2.0, 4.0)]:
        timing = measure_method(
            "object_overhaul", n_objects, n_queries, k=K0, cycles=CYCLES0
        )
        result.add_row(n_objects, timing.index_time, timing.answer_time)
    r2 = linearity_r2(result.column("n_objects"), result.column("index_s"))
    answers = result.column("answer_s")
    spread = max(answers) / max(min(answers), 1e-12)
    result.findings.append(f"index-build linear fit R^2 = {r2:.4f}")
    result.findings.append(
        f"answer time max/min over a 16x NP range = {spread:.2f} (constant ~ small)"
    )
    return result


# ----------------------------------------------------------------------
# Figure 12: overhaul vs incremental index maintenance
# ----------------------------------------------------------------------
def fig12_maintenance_crossover(scale: float = 1.0) -> ExperimentResult:
    """Fig. 12: index maintenance, overhaul vs incremental, sweeping vmax."""
    n_objects = _n(NP0, scale)
    n_queries = _n(100, scale)
    result = ExperimentResult(
        "fig12",
        "Overhaul vs incremental Object-Index maintenance",
        ["vmax", "pr_exit", "overhaul_s", "incremental_s"],
        expectation="overhaul cost flat in vmax; incremental grows with "
        "vmax; crossover at small vmax (paper: ~0.0015 at NP=100K)",
    )
    delta = 1.0 / int(round(np.sqrt(n_objects)))
    for vmax in (0.0002, 0.0005, 0.001, 0.002, 0.005):
        overhaul = measure_method(
            "object_overhaul", n_objects, n_queries, k=K0, vmax=vmax, cycles=CYCLES0
        )
        incremental = measure_method(
            "object_incremental", n_objects, n_queries, k=K0, vmax=vmax, cycles=CYCLES0
        )
        result.add_row(
            vmax, pr_exit(delta, vmax), overhaul.index_time, incremental.index_time
        )
    overhauls = result.column("overhaul_s")
    incrementals = result.column("incremental_s")
    crossover = None
    for row_index, vmax in enumerate(result.column("vmax")):
        if incrementals[row_index] > overhauls[row_index]:
            crossover = vmax
            break
    result.findings.append(
        f"incremental grows monotonically: "
        f"{incrementals == sorted(incrementals)}"
    )
    result.findings.append(f"first vmax where overhaul wins: {crossover}")
    return result


# ----------------------------------------------------------------------
# Figure 13: incremental query answering vs NP
# ----------------------------------------------------------------------
def fig13_incremental_query_answering(scale: float = 1.0) -> ExperimentResult:
    """Fig. 13: incremental query answering O(sqrt NP) then O(NP)."""
    n_queries = _n(NQ0 / 2, scale)
    result = ExperimentResult(
        "fig13",
        "Incremental query answering with the Object-Index vs NP",
        ["n_objects", "answer_s"],
        expectation="answer cost grows ~sqrt(NP) for small NP and tends "
        "toward linear for large NP (Theorem 3)",
    )
    factors = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0)
    for n_objects in [_n(f * NP0, scale) for f in factors]:
        timing = measure_method(
            "object_incremental", n_objects, n_queries, k=K0, cycles=CYCLES0
        )
        result.add_row(n_objects, timing.answer_time)
    xs = result.column("n_objects")
    ys = result.column("answer_s")
    p_all, _ = fit_power_law(xs, ys)
    result.findings.append(
        f"power-law exponent over full range = {p_all:.2f} "
        "(paper: between 0.5 and 1.0)"
    )
    return result


# ----------------------------------------------------------------------
# Figure 14: Query-Indexing index build time vs NP
# ----------------------------------------------------------------------
def fig14_query_index_build(scale: float = 1.0) -> ExperimentResult:
    """Fig. 14: Query-Index maintenance time vs NP (same trend as Fig. 13)."""
    n_queries = _n(NQ0 / 2, scale)
    result = ExperimentResult(
        "fig14",
        "Index building time of Query-Indexing vs NP",
        ["n_objects", "index_s"],
        expectation="index-build time of Query-Indexing grows sublinearly "
        "with NP (similar trend to Fig. 13)",
    )
    for n_objects in [_n(f * NP0, scale) for f in (0.25, 0.5, 1.0, 2.0, 4.0)]:
        timing = measure_method(
            "query_indexing_rebuild", n_objects, n_queries, k=K0, cycles=CYCLES0
        )
        result.add_row(n_objects, timing.index_time)
    p, _ = fit_power_law(result.column("n_objects"), result.column("index_s"))
    result.findings.append(f"power-law exponent = {p:.2f} (sublinear expected)")
    return result


# ----------------------------------------------------------------------
# Figure 15: Query-Indexing vs Object-Indexing crossover in NQ
# ----------------------------------------------------------------------
def fig15_qi_vs_oi(scale: float = 1.0) -> ExperimentResult:
    """Fig. 15: QI wins for few queries; OI wins as NQ grows."""
    n_objects = _n(NP0, scale)
    result = ExperimentResult(
        "fig15",
        "Query-Indexing vs Object-Indexing w.r.t. NQ",
        ["n_queries", "query_indexing_s", "object_indexing_s"],
        expectation="Query-Indexing cheaper for small NQ (it avoids the "
        "object-index build); Object-Indexing wins past a crossover "
        "(paper: ~1000 queries at NP=100K)",
    )
    for n_queries in [_n(f * NQ0, scale) for f in (0.05, 0.1, 0.25, 0.5, 1.0, 2.0)]:
        qi = measure_method(
            "query_indexing", n_objects, n_queries, k=K0, cycles=CYCLES0
        )
        oi = measure_method(
            "object_overhaul", n_objects, n_queries, k=K0, cycles=CYCLES0
        )
        result.add_row(n_queries, qi.total_time, oi.total_time)
    qi_times = result.column("query_indexing_s")
    oi_times = result.column("object_indexing_s")
    nqs = result.column("n_queries")
    crossover = next(
        (nqs[i] for i in range(len(nqs)) if qi_times[i] > oi_times[i]), None
    )
    result.findings.append(f"QI wins at NQ={nqs[0]}: {qi_times[0] < oi_times[0]}")
    result.findings.append(f"first NQ where OI wins: {crossover}")
    return result


# ----------------------------------------------------------------------
# Figure 16: cell-size sweep
# ----------------------------------------------------------------------
def fig16_cell_size(scale: float = 1.0) -> ExperimentResult:
    """Fig. 16: U-shaped cost in cell size, optimum near delta=1/sqrt(NP)."""
    n_objects = _n(NP0 / 2, scale)
    n_queries = _n(NQ0 / 2, scale)
    optimal = int(round(np.sqrt(n_objects)))
    result = ExperimentResult(
        "fig16",
        "Effect of cell size on the one-level indices",
        ["ncells", "object_indexing_s", "query_indexing_s"],
        expectation="one-level structures reach optimal performance near "
        "1/delta = sqrt(NP) (log-log U shape); see ablation_delta0 for "
        "the companion claim that the hierarchical index is robust to "
        "its initial cell size",
    )
    for ncells in [
        max(2, int(round(optimal * f))) for f in (0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0)
    ]:
        oi = measure_method(
            "object_overhaul",
            n_objects,
            n_queries,
            k=K0,
            cycles=CYCLES0,
            ncells=ncells,
        )
        qi = measure_method(
            "query_indexing", n_objects, n_queries, k=K0, cycles=CYCLES0, ncells=ncells
        )
        result.add_row(ncells, oi.total_time, qi.total_time)
    ncells_list = result.column("ncells")
    oi_times = result.column("object_indexing_s")
    best = ncells_list[int(np.argmin(oi_times))]
    result.findings.append(
        f"object-indexing optimum at ncells={best} "
        f"(theory: {optimal}, within 4x: {optimal / 4 <= best <= optimal * 4})"
    )
    result.findings.append(
        "cost at the extremes exceeds the optimum: "
        f"{oi_times[0] > min(oi_times) and oi_times[-1] > min(oi_times)}"
    )
    return result


# ----------------------------------------------------------------------
# Ablations (design choices DESIGN.md calls out; not paper figures)
# ----------------------------------------------------------------------
def ablation_delta0(scale: float = 1.0) -> ExperimentResult:
    """§4 claim: hierarchical index is robust to the initial cell size.

    The paper prescribes a delta0 "much greater than delta*"; the sweep
    therefore covers the coarse range only (the hierarchy adapts downward
    by splitting, never upward).
    """
    n_objects = _n(NP0 / 2, scale)
    n_queries = _n(NQ0 / 2, scale)
    result = ExperimentResult(
        "ablation_delta0",
        "Hierarchical index robustness to the initial cell size delta0",
        ["delta0", "total_s", "index_cells", "leaf_cells"],
        expectation="performance varies little across coarse delta0 "
        "choices (the adaptive splitting compensates)",
    )
    for delta0 in (1.0, 0.5, 0.25, 0.1, 0.05):
        timing = measure_method(
            "hierarchical_rebuild", n_objects, n_queries, k=K0,
            dataset="skewed", cycles=CYCLES0, delta0=delta0,
        )
        index = HierarchicalObjectIndex(delta0=delta0)
        index.build(make_dataset("skewed", n_objects, seed=SEED))
        index_cells, leaf_cells = index.cell_counts()
        result.add_row(delta0, timing.total_time, index_cells, leaf_cells)
    times = result.column("total_s")
    spread = max(times) / max(min(times), 1e-12)
    result.findings.append(f"max/min total time over the sweep = {spread:.2f}")
    return result


def ablation_hier_params(scale: float = 1.0) -> ExperimentResult:
    """Sensitivity to the hierarchical parameters Nc and m (§4 defaults)."""
    n_objects = _n(NP0 / 2, scale)
    n_queries = _n(NQ0 / 2, scale)
    result = ExperimentResult(
        "ablation_hier_params",
        "Hierarchical index sensitivity to max cell load Nc and split factor m",
        ["max_cell_load", "split_factor", "total_s", "cells_total"],
        expectation="the paper's defaults (Nc=10, m=3) sit in a broad "
        "plateau; very small Nc inflates memory, very large Nc degrades "
        "toward one-level behaviour",
    )
    for max_cell_load, split_factor in [
        (5, 3), (10, 2), (10, 3), (10, 4), (20, 3), (50, 3),
    ]:
        timing = measure_method(
            "hierarchical_rebuild", n_objects, n_queries, k=K0,
            dataset="skewed", cycles=CYCLES0,
            max_cell_load=max_cell_load, split_factor=split_factor,
        )
        index = HierarchicalObjectIndex(
            delta0=0.1, max_cell_load=max_cell_load, split_factor=split_factor
        )
        index.build(make_dataset("skewed", n_objects, seed=SEED))
        result.add_row(
            max_cell_load, split_factor, timing.total_time, sum(index.cell_counts())
        )
    times = result.column("total_s")
    result.findings.append(
        f"max/min total time across settings = "
        f"{max(times) / max(min(times), 1e-12):.2f}"
    )
    return result


def ablation_containers(scale: float = 1.0) -> ExperimentResult:
    """§3.2 container choice: sorted vs unsorted per-cell object lists."""
    n_objects = _n(NP0, scale)
    n_queries = _n(100, scale)
    result = ExperimentResult(
        "ablation_containers",
        "Sorted vs plain object lists for incremental maintenance",
        ["vmax", "plain_index_s", "sorted_index_s"],
        expectation="with CPython lists both containers pay O(L) per "
        "deletion, so the difference is a small constant (the paper's "
        "binary-tree recommendation targets C++)",
    )
    from ..core.monitor import MonitoringSystem as MS

    for vmax in (0.001, 0.005, 0.02):
        timings = []
        for sorted_cells in (False, True):
            queries = make_queries(n_queries, seed=SEED + 1)
            positions = make_dataset("uniform", n_objects, seed=SEED)
            system = MS.object_indexing(
                K0, queries, maintenance="incremental", answering="incremental"
            )
            system.engine._make_index = (  # route the ablation flag in
                lambda n, flag=sorted_cells: _sorted_index(n, flag)
            )
            motion = RandomWalkModel(vmax=vmax, seed=SEED + 2)
            timing = measure_cycles(system, positions, motion, cycles=CYCLES0)
            timings.append(timing.index_time)
        result.add_row(vmax, timings[0], timings[1])
    plain = result.column("plain_index_s")
    sorted_times = result.column("sorted_index_s")
    ratio = max(s / max(p, 1e-12) for p, s in zip(plain, sorted_times))
    result.findings.append(f"worst sorted/plain ratio = {ratio:.2f}")
    return result


def _sorted_index(n_objects: int, sorted_cells: bool):
    from ..core.object_index import ObjectIndex

    return ObjectIndex(n_objects=max(1, n_objects), sorted_cells=sorted_cells)


def ablation_tpr_degeneration(scale: float = 1.0) -> ExperimentResult:
    """§5.4 claim: with constantly changing velocities the TPR-tree
    degenerates to the R-tree and is no longer viable.

    Sweeps the per-cycle velocity-change probability from 0 (the
    TPR-tree's design regime) to 1 (the paper's free-motion setting) and
    reports the predictive engine's per-cycle update count and cycle time
    against the grid.
    """
    from ..motion.linear import LinearMotionModel
    from ..tprtree import TPREngine

    n_objects = _n(NP0 / 4, scale)
    n_queries = _n(NQ0 / 4, scale)
    queries = make_queries(n_queries, seed=SEED + 1)
    result = ExperimentResult(
        "ablation_tpr_degeneration",
        "TPR-tree degeneration under changing velocities",
        ["change_prob", "tpr_updates_per_cycle", "tpr_total_s", "grid_total_s"],
        expectation="updates/cycle rise from ~0 to NP as velocity changes "
        "become constant; TPR cycle cost degenerates to full-rebuild "
        "R-tree territory while the grid is unaffected",
    )
    for change_probability in (0.0, 0.1, 0.5, 1.0):
        engine = TPREngine(K0, queries)
        tpr_system = MonitoringSystem(engine)
        grid_system = build_system("object_overhaul", K0, queries)
        positions = make_dataset("uniform", n_objects, seed=SEED)
        motion = LinearMotionModel(
            n_objects, vmax=VMAX0, change_probability=change_probability,
            seed=SEED + 2,
        )
        current = positions
        tpr_system.load(current)
        grid_system.load(current)
        updates = []
        for _ in range(CYCLES0 + 1):
            current = motion.step(current)
            tpr_system.tick(current)
            grid_system.tick(current)
            updates.append(engine.last_update_count)
        # Skip the bootstrap cycle (zero initial velocity estimates).
        mean_updates = sum(updates[1:]) / len(updates[1:])
        tpr_time = sum(
            s.total_time for s in tpr_system.history[2:]
        ) / len(tpr_system.history[2:])
        grid_time = sum(
            s.total_time for s in grid_system.history[2:]
        ) / len(grid_system.history[2:])
        result.add_row(change_probability, mean_updates, tpr_time, grid_time)
    update_series = result.column("tpr_updates_per_cycle")
    tpr_times = result.column("tpr_total_s")
    grid_times = result.column("grid_total_s")
    result.findings.append(
        f"updates/cycle {update_series[0]:.0f} -> {update_series[-1]:.0f} "
        f"(NP={n_objects}) as change probability goes 0 -> 1"
    )
    result.findings.append(
        f"TPR slowdown {tpr_times[-1] / tpr_times[0]:.1f}x while grid varies "
        f"{max(grid_times) / min(grid_times):.1f}x"
    )
    return result


def ablation_rtree_maintenance(scale: float = 1.0) -> ExperimentResult:
    """R-tree maintenance ablation: the paper's two modes plus STR bulk.

    The paper's "R-tree overhaul" reconstructs the tree by insertion; STR
    bulk loading is a stronger rebuild the paper did not run.  Including
    it shows the grid's advantage does not rest on a weak tree baseline.
    """
    n_objects = _n(NP0 / 2, scale)
    n_queries = _n(NQ0 / 2, scale)
    result = ExperimentResult(
        "ablation_rtree_maintenance",
        "R-tree maintenance modes vs the one-level grid",
        ["method", "index_s", "answer_s", "total_s"],
        expectation="insertion rebuild slowest, bottom-up in between, STR "
        "bulk cheapest to maintain; the grid beats even STR bulk on total "
        "cycle time at realistic query counts",
    )
    grid_methods = ("object_overhaul", "query_indexing", "hierarchical_rebuild")
    rtree_methods = ("rtree_overhaul", "rtree_bottom_up", "rtree_str_bulk")
    for method in rtree_methods + grid_methods:
        timing = measure_method(
            method, n_objects, n_queries, k=K0, dataset="skewed", cycles=CYCLES0
        )
        result.add_row(method, timing.index_time, timing.answer_time, timing.total_time)
    totals = dict(zip(result.column("method"), result.column("total_s")))
    best_grid = min(totals[m] for m in grid_methods)
    best_rtree = min(totals[m] for m in rtree_methods)
    result.findings.append(
        f"best grid ({best_grid:.4f}s) beats best R-tree ({best_rtree:.4f}s): "
        f"{best_grid < best_rtree}"
    )
    result.findings.append(
        "STR bulk (not in the paper) vs one-level grid: "
        f"{totals['rtree_str_bulk']:.4f}s vs {totals['object_overhaul']:.4f}s"
    )
    return result


# ----------------------------------------------------------------------
# Figure 17: effect of data skew on every method
# ----------------------------------------------------------------------
_FIG17_METHODS = [
    ("hierarchical_rebuild", "hierarchical"),
    ("object_overhaul", "one_level"),
    ("query_indexing", "query_indexing"),
    ("rtree_overhaul", "rtree_overhaul"),
    ("rtree_bottom_up", "rtree_bottom_up"),
]


def fig17_skewness(scale: float = 1.0) -> ExperimentResult:
    """Fig. 17: per-dataset cycle time for all five methods."""
    n_objects = _n(NP0 / 2, scale)
    n_queries = _n(NQ0 / 2, scale)
    result = ExperimentResult(
        "fig17",
        "Effect of data skewness on the index structures",
        ["dataset"] + [label for _, label in _FIG17_METHODS],
        expectation="one-level OI and QI degrade with skew; hierarchical "
        "OI consistently performs well; road data sits between uniform "
        "and skewed; R-trees slowest overall",
    )
    datasets: Dict[str, np.ndarray] = {
        name: make_dataset(name, n_objects, seed=SEED)
        for name in ("uniform", "skewed", "hi_skewed")
    }
    datasets["roadnet"] = roadnet_dataset(n_objects, warmup_cycles=30, seed=SEED)
    queries = make_queries(n_queries, seed=SEED + 1)
    for dataset_name, positions in datasets.items():
        row: List = [dataset_name]
        for method, _ in _FIG17_METHODS:
            system = build_system(method, K0, queries)
            motion = RandomWalkModel(vmax=VMAX0, seed=SEED + 2)
            timing = measure_cycles(system, positions, motion, cycles=CYCLES0)
            row.append(timing.total_time)
        result.add_row(*row)
    hier = result.column("hierarchical")
    one_level = result.column("one_level")
    rtree = result.column("rtree_overhaul")
    result.findings.append(
        "hierarchical beats one-level on the most skewed data: "
        f"{hier[2] < one_level[2]}"
    )
    result.findings.append(
        f"grid methods beat R-tree on every dataset: "
        f"{all(h < r for h, r in zip(hier, rtree))}"
    )
    return result


# ----------------------------------------------------------------------
# Figure 18: performance vs NP (skewed data)
# ----------------------------------------------------------------------
def fig18a_grid_vs_np(scale: float = 1.0) -> ExperimentResult:
    """Fig. 18(a): grid methods vs NP on skewed data."""
    # The paper runs NQ=5000 against NP=100K (a 5% ratio); keep the same
    # ratio at the reference NP.
    n_queries = _n(NQ0, scale)
    result = ExperimentResult(
        "fig18a",
        "Grid-based indices vs NP (skewed data)",
        ["n_objects", "query_indexing_s", "one_level_s", "hierarchical_s"],
        expectation="hierarchical best with near-linear scalability; "
        "one-level shifts from O(sqrt NP) toward O(NP); QI worst for "
        "this many queries",
    )
    for n_objects in [_n(f * NP0, scale) for f in (0.25, 0.5, 1.0, 2.0, 4.0)]:
        qi = measure_method(
            "query_indexing", n_objects, n_queries, k=K0, dataset="skewed",
            cycles=CYCLES0,
        )
        oi = measure_method(
            "object_overhaul", n_objects, n_queries, k=K0, dataset="skewed",
            cycles=CYCLES0,
        )
        hier = measure_method(
            "hierarchical_rebuild", n_objects, n_queries, k=K0,
            dataset="skewed", cycles=CYCLES0,
        )
        result.add_row(n_objects, qi.total_time, oi.total_time, hier.total_time)
    p_hier, _ = fit_power_law(result.column("n_objects"), result.column("hierarchical_s"))
    result.findings.append(f"hierarchical growth exponent = {p_hier:.2f} (~linear)")
    hier_last = result.column("hierarchical_s")[-1]
    qi_last = result.column("query_indexing_s")[-1]
    result.findings.append(f"hierarchical beats QI at largest NP: {hier_last < qi_last}")
    return result


def fig18b_rtree_vs_np(scale: float = 1.0) -> ExperimentResult:
    """Fig. 18(b): R-tree methods vs NP on skewed data."""
    n_queries = _n(NQ0 / 2, scale)
    result = ExperimentResult(
        "fig18b",
        "R-tree-based indices vs NP (skewed data)",
        ["n_objects", "rtree_overhaul_s", "rtree_bottom_up_s"],
        expectation="bottom-up update beats overhaul rebuild only for "
        "small populations; both far slower than grids",
    )
    for n_objects in [_n(f * NP0, scale) for f in (0.1, 0.25, 0.5, 1.0, 2.0)]:
        overhaul = measure_method(
            "rtree_overhaul", n_objects, n_queries, k=K0, dataset="skewed",
            cycles=CYCLES0,
        )
        bottom_up = measure_method(
            "rtree_bottom_up", n_objects, n_queries, k=K0, dataset="skewed",
            cycles=CYCLES0,
        )
        result.add_row(n_objects, overhaul.total_time, bottom_up.total_time)
    over = result.column("rtree_overhaul_s")
    bottom = result.column("rtree_bottom_up_s")
    result.findings.append(
        f"bottom-up/overhaul ratio grows with NP: "
        f"{bottom[-1] / over[-1] > bottom[0] / over[0]}"
    )
    return result


# ----------------------------------------------------------------------
# Figure 19: performance vs NQ (skewed data)
# ----------------------------------------------------------------------
def fig19a_grid_vs_nq(scale: float = 1.0) -> ExperimentResult:
    """Fig. 19(a): grid methods vs NQ on skewed data."""
    n_objects = _n(NP0, scale)
    result = ExperimentResult(
        "fig19a",
        "Grid-based indices vs NQ (skewed data)",
        ["n_queries", "query_indexing_s", "one_level_s", "hierarchical_s"],
        expectation="QI best for small workloads; hierarchical best for "
        "large NQ; one-level beats hierarchical only when NQ is small",
    )
    for n_queries in [_n(f * NQ0, scale) for f in (0.05, 0.2, 0.5, 1.0, 2.0, 4.0)]:
        qi = measure_method(
            "query_indexing", n_objects, n_queries, k=K0, dataset="skewed",
            cycles=CYCLES0,
        )
        oi = measure_method(
            "object_overhaul", n_objects, n_queries, k=K0, dataset="skewed",
            cycles=CYCLES0,
        )
        hier = measure_method(
            "hierarchical_rebuild", n_objects, n_queries, k=K0,
            dataset="skewed", cycles=CYCLES0,
        )
        result.add_row(n_queries, qi.total_time, oi.total_time, hier.total_time)
    qi_times = result.column("query_indexing_s")
    hier_times = result.column("hierarchical_s")
    result.findings.append(
        f"QI wins at smallest NQ: {qi_times[0] == min(result.rows[0][1:])}"
    )
    result.findings.append(
        f"hierarchical wins at largest NQ: "
        f"{hier_times[-1] == min(result.rows[-1][1:])}"
    )
    return result


def fig19b_rtree_vs_nq(scale: float = 1.0) -> ExperimentResult:
    """Fig. 19(b): R-tree methods vs NQ on skewed data."""
    n_objects = _n(NP0 / 2, scale)
    result = ExperimentResult(
        "fig19b",
        "R-tree-based indices vs NQ (skewed data)",
        ["n_queries", "rtree_overhaul_s", "rtree_bottom_up_s"],
        expectation="paper (NP=100K): bottom-up worse than overhaul across "
        "the sweep (higher maintenance cost and more MBR overlap).  At "
        "Python-reachable NP the crossover has not happened yet, so "
        "bottom-up may still lead here; Fig. 18(b) shows its advantage "
        "shrinking with NP",
    )
    for n_queries in [_n(f * NQ0, scale) for f in (0.2, 0.5, 1.0, 2.0)]:
        overhaul = measure_method(
            "rtree_overhaul", n_objects, n_queries, k=K0, dataset="skewed",
            cycles=CYCLES0,
        )
        bottom_up = measure_method(
            "rtree_bottom_up", n_objects, n_queries, k=K0, dataset="skewed",
            cycles=CYCLES0,
        )
        result.add_row(n_queries, overhaul.total_time, bottom_up.total_time)
    over = result.column("rtree_overhaul_s")
    bottom = result.column("rtree_bottom_up_s")
    result.findings.append(
        f"overhaul beats bottom-up everywhere: "
        f"{all(o < b for o, b in zip(over, bottom))}"
    )
    return result


# ----------------------------------------------------------------------
# Figure 20: scalability w.r.t. k
# ----------------------------------------------------------------------
def fig20_scalability_k(scale: float = 1.0) -> ExperimentResult:
    """Fig. 20: grid methods scale ~linearly with k (skewed data)."""
    n_objects = _n(NP0, scale)
    n_queries = _n(NQ0, scale)  # paper: NQ=5000 at NP=100K (5% ratio)
    result = ExperimentResult(
        "fig20",
        "Grid-based indices vs k (skewed data)",
        ["k", "hierarchical_s", "one_level_s", "query_indexing_s"],
        expectation="all methods approximately linear in k; hierarchical "
        "best for all k; R-trees an order of magnitude slower (omitted)",
    )
    for k in (1, 5, 10, 15, 20):
        hier = measure_method(
            "hierarchical_rebuild", n_objects, n_queries, k=k,
            dataset="skewed", cycles=CYCLES0,
        )
        oi = measure_method(
            "object_overhaul", n_objects, n_queries, k=k, dataset="skewed",
            cycles=CYCLES0,
        )
        qi = measure_method(
            "query_indexing", n_objects, n_queries, k=k, dataset="skewed",
            cycles=CYCLES0,
        )
        result.add_row(k, hier.total_time, oi.total_time, qi.total_time)
    hier_times = result.column("hierarchical_s")
    oi_times = result.column("one_level_s")
    result.findings.append(
        "hierarchical best at every k: "
        f"{all(row[1] == min(row[1:]) for row in result.rows)}"
    )
    result.findings.append(
        f"one-level growth vs k is mild: max/min = "
        f"{max(oi_times) / max(min(oi_times), 1e-12):.2f}"
    )
    return result


# ----------------------------------------------------------------------
# Figure 21: memory footprint of the hierarchical index
# ----------------------------------------------------------------------
def fig21a_memory_vs_np(scale: float = 1.0) -> ExperimentResult:
    """Fig. 21(a): hierarchical index/leaf cells linear in NP (skewed)."""
    result = ExperimentResult(
        "fig21a",
        "Hierarchical index memory usage vs NP",
        ["n_objects", "index_cells", "leaf_cells"],
        expectation="numbers of index cells and leaf cells both linear "
        "in the population size",
    )
    for n_objects in [_n(f * NP0, scale) for f in (0.25, 0.5, 1.0, 2.0, 4.0)]:
        index = HierarchicalObjectIndex(delta0=0.1, max_cell_load=10, split_factor=3)
        index.build(make_dataset("skewed", n_objects, seed=SEED))
        index_cells, leaf_cells = index.cell_counts()
        result.add_row(n_objects, index_cells, leaf_cells)
    r2_index = linearity_r2(result.column("n_objects"), result.column("index_cells"))
    r2_leaf = linearity_r2(result.column("n_objects"), result.column("leaf_cells"))
    result.findings.append(
        f"linearity R^2: index cells {r2_index:.3f}, leaf cells {r2_leaf:.3f}"
    )
    return result


def fig21b_memory_dispersion(scale: float = 1.0) -> ExperimentResult:
    """Fig. 21(b): cell counts shrink as clusters disperse to uniform.

    The population is chosen so the uniform end state sits comfortably
    inside a split level (about 50 objects per delta0 cell); right at a
    split threshold the footprint comparison is parameter-noise, not
    signal.
    """
    n_objects = _n(NP0 / 4, scale)
    steps = 10
    process = DispersionProcess(n_objects, steps=steps, seed=SEED)
    index = HierarchicalObjectIndex(delta0=0.1, max_cell_load=10, split_factor=3)
    index.build(process.positions_at(0))
    result = ExperimentResult(
        "fig21b",
        "Hierarchical index memory during cluster dispersion",
        ["step", "index_cells", "leaf_cells"],
        expectation="both cell counts decrease as the data becomes "
        "uniform, converging to the counts of a uniform-data index",
    )
    for step in range(steps + 1):
        if step > 0:
            index.update(process.positions_at(step))
        index_cells, leaf_cells = index.cell_counts()
        result.add_row(step, index_cells, leaf_cells)
    uniform_index = HierarchicalObjectIndex(
        delta0=0.1, max_cell_load=10, split_factor=3
    )
    uniform_index.build(make_dataset("uniform", n_objects, seed=SEED))
    uniform_cells = sum(uniform_index.cell_counts())
    start_cells = result.rows[0][1] + result.rows[0][2]
    end_cells = result.rows[-1][1] + result.rows[-1][2]
    result.findings.append(f"cells shrink {start_cells} -> {end_cells}")
    result.findings.append(
        f"final within 2x of a fresh uniform-data index ({uniform_cells}): "
        f"{end_cells <= 2 * uniform_cells}"
    )
    return result


# ----------------------------------------------------------------------
# Figure 22: effect of object velocity
# ----------------------------------------------------------------------
_VELOCITIES = (0.0005, 0.001, 0.0025, 0.005, 0.0125, 0.025)


def fig22a_object_maintenance_velocity(scale: float = 1.0) -> ExperimentResult:
    """Fig. 22(a): object-index maintenance vs velocity (skewed data)."""
    n_objects = _n(NP0, scale)
    n_queries = _n(100, scale)
    result = ExperimentResult(
        "fig22a",
        "Object-index maintenance vs velocity",
        [
            "vmax",
            "one_level_rebuild_s",
            "one_level_incremental_s",
            "hier_rebuild_s",
            "hier_incremental_s",
        ],
        expectation="rebuild costs flat in velocity; incremental costs "
        "grow; hierarchical incremental never preferred (expensive "
        "look-ups for deletion)",
    )
    for vmax in _VELOCITIES:
        row: List = [vmax]
        for method in (
            "object_overhaul",
            "object_incremental",
            "hierarchical_rebuild",
            "hierarchical_incremental",
        ):
            timing = measure_method(
                method, n_objects, n_queries, k=K0, dataset="skewed", vmax=vmax,
                cycles=CYCLES0,
            )
            row.append(timing.index_time)
        result.add_row(*row)
    one_incr = result.column("one_level_incremental_s")
    hier_incr = result.column("hier_incremental_s")
    hier_rebuild = result.column("hier_rebuild_s")
    result.findings.append(
        f"one-level incremental grows with velocity: "
        f"{one_incr[-1] > one_incr[0]}"
    )
    result.findings.append(
        f"hier incremental loses to hier rebuild at high velocity: "
        f"{hier_incr[-1] > hier_rebuild[-1]}"
    )
    return result


def fig22b_query_maintenance_velocity(scale: float = 1.0) -> ExperimentResult:
    """Fig. 22(b): query-index maintenance vs velocity (skewed data)."""
    n_objects = _n(NP0 / 2, scale)
    n_queries = _n(NQ0 / 2, scale)
    result = ExperimentResult(
        "fig22b",
        "Query-index maintenance vs velocity",
        ["vmax", "rebuild_s", "incremental_s"],
        expectation="incremental maintenance beats rebuild over a wide "
        "velocity range (rectangle diffs stay small)",
    )
    for vmax in _VELOCITIES:
        rebuild = measure_method(
            "query_indexing_rebuild", n_objects, n_queries, k=K0, dataset="skewed",
            vmax=vmax, cycles=CYCLES0,
        )
        incremental = measure_method(
            "query_indexing", n_objects, n_queries, k=K0, dataset="skewed",
            vmax=vmax, cycles=CYCLES0,
        )
        result.add_row(vmax, rebuild.index_time, incremental.index_time)
    rebuilds = result.column("rebuild_s")
    incrementals = result.column("incremental_s")
    wins = sum(1 for r, i in zip(rebuilds, incrementals) if i < r)
    result.findings.append(
        f"incremental wins at {wins}/{len(_VELOCITIES)} velocities"
    )
    return result


def fig22c_answering_velocity(scale: float = 1.0) -> ExperimentResult:
    """Fig. 22(c): query answering vs velocity for the grid variants."""
    n_objects = _n(NP0 / 2, scale)
    n_queries = _n(NQ0 / 2, scale)
    result = ExperimentResult(
        "fig22c",
        "Query answering vs velocity",
        [
            "vmax",
            "oi_overhaul_s",
            "oi_incremental_s",
            "qi_incremental_s",
            "hier_overhaul_s",
            "hier_incremental_s",
        ],
        expectation="overhaul answering flat in velocity; incremental "
        "answering degrades as lcrit estimates loosen — overhaul "
        "preferable at high velocity",
    )
    method_columns = [
        ("object_overhaul", {}),
        ("object_incremental", {}),
        ("query_indexing", {}),
        ("hierarchical_rebuild", {"answering": "overhaul"}),
        ("hierarchical_rebuild", {"answering": "incremental"}),
    ]
    for vmax in _VELOCITIES:
        row: List = [vmax]
        for method, extra in method_columns:
            queries = make_queries(n_queries, seed=SEED + 1)
            positions = make_dataset("skewed", n_objects, seed=SEED)
            system = build_system(method, K0, queries, **extra)
            motion = RandomWalkModel(vmax=vmax, seed=SEED + 2)
            timing = measure_cycles(system, positions, motion, cycles=CYCLES0)
            row.append(timing.answer_time)
        result.add_row(*row)
    overhaul = result.column("oi_overhaul_s")
    incremental = result.column("oi_incremental_s")
    result.findings.append(
        f"incremental OI answering grows with velocity: "
        f"{incremental[-1] > incremental[0]}"
    )
    result.findings.append(
        f"overhaul flat (max/min = "
        f"{max(overhaul) / max(min(overhaul), 1e-12):.2f})"
    )
    return result


# ----------------------------------------------------------------------
# Fast CSR engine (production path, not a paper figure)
# ----------------------------------------------------------------------
def fastgrid_speedup(scale: float = 1.0) -> ExperimentResult:
    """Fast CSR engine vs paper-faithful grid engines (cycle-time speedup).

    Not a paper figure: measures the vectorized CSR + batched-answering
    engine against the reproduction's Object-Indexing engines on the
    reference workload, with the fast engine's per-stage breakdown
    (snapshot_csr / radii / gather / select).
    """
    n_objects = _n(NP0, scale)
    n_queries = _n(NQ0, scale)
    result = ExperimentResult(
        "fastgrid",
        "Vectorized CSR engine vs paper-faithful grid engines",
        ["method", "index_s", "answer_s", "total_s", "speedup_vs_overhaul"],
        expectation="the CSR layout + batched answering amortize the "
        "per-cycle work across all queries; target >= 5x lower total "
        "cycle time than overhaul Object-Indexing at full scale",
    )
    timings = {}
    fast_engine = None
    for method in ("object_overhaul", "object_incremental", "fast_grid"):
        positions = make_dataset("uniform", n_objects, seed=SEED)
        queries = make_queries(n_queries, seed=SEED + 1)
        motion = RandomWalkModel(vmax=VMAX0, seed=SEED + 2)
        system = build_system(method, K0, queries)
        timings[method] = measure_cycles(
            system, positions, motion, cycles=CYCLES0
        )
        if method == "fast_grid":
            fast_engine = system.engine
    baseline = timings["object_overhaul"].total_time
    for method, timing in timings.items():
        result.add_row(
            method,
            timing.index_time,
            timing.answer_time,
            timing.total_time,
            baseline / max(timing.total_time, 1e-12),
        )
    if fast_engine is not None:
        result.stage_breakdown["fast_grid"] = fast_engine.mean_stage_times()
    speedup = baseline / max(timings["fast_grid"].total_time, 1e-12)
    result.findings.append(
        f"fast_grid is {speedup:.1f}x faster than object_overhaul "
        f"(NP={n_objects}, NQ={n_queries}, k={K0})"
    )
    return result


# ----------------------------------------------------------------------
# Sharded parallel engine (production path, not a paper figure)
# ----------------------------------------------------------------------
def sharded_scaling(scale: float = 1.0) -> ExperimentResult:
    """Sharded engine vs single-process fast grid (worker scaling).

    Not a paper figure: sweeps the worker-pool size of the stripe-sharded
    engine (``workers=0`` is the in-process serial fallback) against the
    single-process fast-grid engine on the reference workload.
    """
    n_objects = _n(NP0, scale)
    n_queries = _n(NQ0, scale)
    result = ExperimentResult(
        "sharded",
        "Stripe-sharded multiprocess engine vs fast grid",
        ["method", "index_s", "answer_s", "total_s", "speedup_vs_fast_grid"],
        expectation="sharding shrinks the per-stripe sorts and gathers; "
        "cycle time should not regress vs the single-process fast grid "
        "and should improve as workers are added",
    )
    variants = [
        ("fast_grid", {}),
        ("sharded", {"workers": 0, "shards": 4}),
        ("sharded", {"workers": 1}),
        ("sharded", {"workers": 2}),
        ("sharded", {"workers": 4}),
    ]
    timings = {}
    for method, options in variants:
        label = method if not options else (
            f"{method}/w{options.get('workers')}"
            + (f"s{options['shards']}" if "shards" in options else "")
        )
        positions = make_dataset("uniform", n_objects, seed=SEED)
        queries = make_queries(n_queries, seed=SEED + 1)
        motion = RandomWalkModel(vmax=VMAX0, seed=SEED + 2)
        system = build_system(method, K0, queries, **options)
        try:
            timings[label] = measure_cycles(
                system, positions, motion, cycles=CYCLES0
            )
        finally:
            system.close()
    baseline = timings["fast_grid"].total_time
    for label, timing in timings.items():
        result.add_row(
            label,
            timing.index_time,
            timing.answer_time,
            timing.total_time,
            baseline / max(timing.total_time, 1e-12),
        )
    best = min(timings, key=lambda label: timings[label].total_time)
    result.findings.append(
        f"fastest variant: {best} at "
        f"{timings[best].total_time * 1e3:.1f}ms/cycle "
        f"(NP={n_objects}, NQ={n_queries}, k={K0})"
    )
    return result


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
EXPERIMENTS: Dict[str, Callable[[float], ExperimentResult]] = {
    "fig09": fig09_datasets,
    "fig10": fig10_roadnet,
    "fig11a": fig11a_overhaul_vs_nq,
    "fig11b": fig11b_overhaul_vs_np,
    "fig12": fig12_maintenance_crossover,
    "fig13": fig13_incremental_query_answering,
    "fig14": fig14_query_index_build,
    "fig15": fig15_qi_vs_oi,
    "fig16": fig16_cell_size,
    "fig17": fig17_skewness,
    "fig18a": fig18a_grid_vs_np,
    "fig18b": fig18b_rtree_vs_np,
    "fig19a": fig19a_grid_vs_nq,
    "fig19b": fig19b_rtree_vs_nq,
    "fig20": fig20_scalability_k,
    "fig21a": fig21a_memory_vs_np,
    "fig21b": fig21b_memory_dispersion,
    "fig22a": fig22a_object_maintenance_velocity,
    "fig22b": fig22b_query_maintenance_velocity,
    "fig22c": fig22c_answering_velocity,
    "fastgrid": fastgrid_speedup,
    "sharded": sharded_scaling,
    "ablation_delta0": ablation_delta0,
    "ablation_hier_params": ablation_hier_params,
    "ablation_containers": ablation_containers,
    "ablation_rtree_maintenance": ablation_rtree_maintenance,
    "ablation_tpr_degeneration": ablation_tpr_degeneration,
}


def run_experiment(figure: str, scale: float = 1.0) -> ExperimentResult:
    """Run one experiment by figure id (e.g. ``"fig11a"``)."""
    from ..errors import ConfigurationError

    try:
        experiment = EXPERIMENTS[figure]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ConfigurationError(
            f"unknown experiment {figure!r}; known: {known}"
        ) from None
    return experiment(scale)
