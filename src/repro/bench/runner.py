"""Cycle-timing harness for the reproduction experiments.

The paper's performance metric is the wall-clock time of one monitoring
cycle: index maintenance plus query answering over a snapshot of all object
positions.  :func:`measure_cycles` runs a configured
:class:`~repro.core.monitor.MonitoringSystem` for a number of cycles under
a motion model and reports mean per-cycle times, split exactly the way the
paper splits them (Fig. 11(b): "Index building" vs "Query answering").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

from ..core.monitor import MonitoringSystem
from ..errors import ConfigurationError
from ..motion import RandomWalkModel, make_dataset, make_queries


@dataclass(frozen=True)
class CycleTiming:
    """Mean per-cycle timings in seconds (initial build excluded)."""

    index_time: float
    answer_time: float
    cycles: int

    @property
    def total_time(self) -> float:
        return self.index_time + self.answer_time


def measure_cycles(
    system: MonitoringSystem,
    positions: np.ndarray,
    motion,
    cycles: int = 5,
) -> CycleTiming:
    """Run ``cycles`` monitoring cycles and average the timing breakdown.

    ``motion`` is any object with a ``step(positions) -> positions`` method
    (RandomWalkModel, RoadNetworkModel, or a DispersionProcess adapter).
    The initial :meth:`load` is not counted — the paper measures the
    steady-state cycle cost.
    """
    if cycles < 1:
        raise ConfigurationError(f"cycles must be >= 1, got {cycles}")
    current = positions
    system.load(current)
    for _ in range(cycles):
        current = motion.step(current)
        system.tick(current)
    stats = system.history[1:]
    index_time = sum(s.index_time for s in stats) / len(stats)
    answer_time = sum(s.answer_time for s in stats) / len(stats)
    return CycleTiming(index_time, answer_time, cycles)


# Factories by the method names used throughout the benchmark suite.  Each
# maps to one line in the paper's figures.
METHOD_FACTORIES: Dict[str, Callable[..., MonitoringSystem]] = {
    "object_overhaul": lambda k, q, **kw: MonitoringSystem.object_indexing(
        k, q, maintenance="rebuild", answering="overhaul", **kw
    ),
    "object_incremental": lambda k, q, **kw: MonitoringSystem.object_indexing(
        k, q, maintenance="incremental", answering="incremental", **kw
    ),
    "query_indexing": lambda k, q, **kw: MonitoringSystem.query_indexing(
        k, q, maintenance="incremental", **kw
    ),
    "query_indexing_rebuild": lambda k, q, **kw: MonitoringSystem.query_indexing(
        k, q, maintenance="rebuild", **kw
    ),
    "hierarchical": lambda k, q, **kw: MonitoringSystem.hierarchical(
        k, q, maintenance="rebuild", answering="incremental", **kw
    ),
    "hierarchical_incremental": lambda k, q, **kw: MonitoringSystem.hierarchical(
        k, q, maintenance="incremental", answering="incremental", **kw
    ),
    "rtree_overhaul": lambda k, q, **kw: MonitoringSystem.rtree(
        k, q, maintenance="overhaul", **kw
    ),
    "rtree_bottom_up": lambda k, q, **kw: MonitoringSystem.rtree(
        k, q, maintenance="bottom_up", **kw
    ),
    "rtree_str_bulk": lambda k, q, **kw: MonitoringSystem.rtree(
        k, q, maintenance="str_bulk", **kw
    ),
    "brute_force": lambda k, q, **kw: MonitoringSystem.brute_force(k, q, **kw),
    "tpr_predictive": lambda k, q, **kw: _tpr_system(k, q, **kw),
    "fast_grid": lambda k, q, **kw: MonitoringSystem.fast_grid(k, q, **kw),
}


def _tpr_system(k: int, queries: np.ndarray, **kwargs) -> MonitoringSystem:
    from ..tprtree import TPREngine

    return MonitoringSystem(TPREngine(k, queries, **kwargs))


def make_system(method: str, k: int, queries: np.ndarray, **kwargs) -> MonitoringSystem:
    """Build a monitoring system by benchmark method name."""
    try:
        factory = METHOD_FACTORIES[method]
    except KeyError:
        known = ", ".join(sorted(METHOD_FACTORIES))
        raise ConfigurationError(f"unknown method {method!r}; known: {known}") from None
    return factory(k, queries, **kwargs)


def measure_method(
    method: str,
    n_objects: int,
    n_queries: int,
    k: int = 10,
    dataset: str = "uniform",
    vmax: float = 0.005,
    cycles: int = 5,
    seed: int = 7,
    **system_kwargs,
) -> CycleTiming:
    """One-call measurement used by the per-figure experiment functions."""
    positions = make_dataset(dataset, n_objects, seed=seed)
    queries = make_queries(n_queries, seed=seed + 1)
    motion = RandomWalkModel(vmax=vmax, seed=seed + 2)
    system = make_system(method, k, queries, **system_kwargs)
    return measure_cycles(system, positions, motion, cycles=cycles)
