"""Cycle-timing harness for the reproduction experiments.

The paper's performance metric is the wall-clock time of one monitoring
cycle: index maintenance plus query answering over a snapshot of all object
positions.  :func:`measure_cycles` runs a configured
:class:`~repro.core.monitor.MonitoringSystem` for a number of cycles under
a motion model and reports mean per-cycle times, split exactly the way the
paper splits them (Fig. 11(b): "Index building" vs "Query answering").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Sequence

import numpy as np

from ..core.monitor import CycleStats, MonitoringSystem
from ..errors import ConfigurationError
from ..motion import RandomWalkModel, make_dataset, make_queries
from ..obs.export import mean_cycle_counters
from ..obs.registry import MetricsRegistry
from ..obs.tracing import span_seconds


@dataclass(frozen=True)
class CycleTiming:
    """Mean per-cycle timings in seconds (initial build excluded).

    Derived from the monitor layer's per-cycle :class:`CycleStats` via
    :meth:`from_history` — ``CycleStats`` is the single source of truth
    for cycle timing; this type only carries the steady-state means the
    benchmark tables print.  ``counters`` holds the mean per-cycle metric
    deltas when the measured system was instrumented.
    """

    index_time: float
    answer_time: float
    cycles: int
    counters: Optional[Mapping[str, float]] = field(default=None, compare=False)

    @property
    def total_time(self) -> float:
        return self.index_time + self.answer_time

    @classmethod
    def from_history(
        cls, history: Sequence[CycleStats], skip_first: bool = True
    ) -> "CycleTiming":
        """Steady-state means of a monitoring history (initial build excluded)."""
        index_time, answer_time, cycles = CycleStats.mean_of(history, skip_first)
        counters = mean_cycle_counters(history, skip_first=skip_first) or None
        return cls(index_time, answer_time, cycles, counters)

    def span_means(self) -> Dict[str, float]:
        """Mean seconds per span path per cycle (empty if uninstrumented)."""
        return span_seconds(self.counters or {})


def measure_cycles(
    system: MonitoringSystem,
    positions: np.ndarray,
    motion,
    cycles: int = 5,
) -> CycleTiming:
    """Run ``cycles`` monitoring cycles and average the timing breakdown.

    ``motion`` is any object with a ``step(positions) -> positions`` method
    (RandomWalkModel, RoadNetworkModel, or a DispersionProcess adapter).
    The initial :meth:`load` is not counted — the paper measures the
    steady-state cycle cost.
    """
    if cycles < 1:
        raise ConfigurationError(f"cycles must be >= 1, got {cycles}")
    current = positions
    system.load(current)
    for _ in range(cycles):
        current = motion.step(current)
        system.tick(current)
    return CycleTiming.from_history(system.history)


# Benchmark method names -> (registry method, preset options).  Each entry
# maps to one line in the paper's figures; systems are built through the
# same MethodConfig registry as MonitoringSystem.create, so preset names
# and caller overrides are validated identically everywhere.
BENCH_PRESETS: Dict[str, "tuple[str, Dict[str, object]]"] = {
    "object_overhaul": (
        "object_indexing", {"maintenance": "rebuild", "answering": "overhaul"}
    ),
    "object_incremental": (
        "object_indexing", {"maintenance": "incremental", "answering": "incremental"}
    ),
    "query_indexing": ("query_indexing", {"maintenance": "incremental"}),
    "query_indexing_rebuild": ("query_indexing", {"maintenance": "rebuild"}),
    "hierarchical": (
        "hierarchical", {"maintenance": "rebuild", "answering": "incremental"}
    ),
    "hierarchical_incremental": (
        "hierarchical", {"maintenance": "incremental", "answering": "incremental"}
    ),
    "rtree_overhaul": ("rtree", {"maintenance": "overhaul"}),
    "rtree_bottom_up": ("rtree", {"maintenance": "bottom_up"}),
    "rtree_str_bulk": ("rtree", {"maintenance": "str_bulk"}),
    "brute_force": ("brute_force", {}),
    "tpr_predictive": ("tpr", {}),
    "fast_grid": ("fast_grid", {}),
    "sharded": ("sharded", {}),
}


def make_system(method: str, k: int, queries: np.ndarray, **kwargs) -> MonitoringSystem:
    """Build a monitoring system by benchmark method name.

    ``method`` may be a benchmark preset (``object_overhaul``, ...) or any
    bare registry method name (``object_indexing``, ``sharded``, ...);
    keyword arguments override the preset's options.
    """
    from ..core.config import METHOD_CONFIGS

    if method in BENCH_PRESETS:
        base, preset = BENCH_PRESETS[method]
        merged = dict(preset)
        merged.update(kwargs)
        return MonitoringSystem.create(base, k, queries, **merged)
    if method in METHOD_CONFIGS:
        return MonitoringSystem.create(method, k, queries, **kwargs)
    known = ", ".join(sorted(set(BENCH_PRESETS) | set(METHOD_CONFIGS)))
    raise ConfigurationError(f"unknown method {method!r}; known: {known}") from None


class _PresetFactories(Mapping):
    """Read-only ``METHOD_FACTORIES`` view kept for backward compatibility.

    Historic callers index this mapping for a ``(k, queries, **kw)``
    factory; entries now close over :func:`make_system` so every path
    goes through the config registry.
    """

    def __getitem__(self, method: str) -> Callable[..., MonitoringSystem]:
        if method not in BENCH_PRESETS:
            raise KeyError(method)
        return lambda k, q, **kw: make_system(method, k, q, **kw)

    def __iter__(self):
        return iter(BENCH_PRESETS)

    def __len__(self) -> int:
        return len(BENCH_PRESETS)


METHOD_FACTORIES: Mapping[str, Callable[..., MonitoringSystem]] = _PresetFactories()


def measure_method(
    method: str,
    n_objects: int,
    n_queries: int,
    k: int = 10,
    dataset: str = "uniform",
    vmax: float = 0.005,
    cycles: int = 5,
    seed: int = 7,
    instrument: bool = False,
    **system_kwargs,
) -> CycleTiming:
    """One-call measurement used by the per-figure experiment functions.

    With ``instrument=True`` the system runs with a live
    :class:`~repro.obs.registry.MetricsRegistry` and the returned timing
    carries mean per-cycle counters (spans included).  Timings measured
    this way include the instrumentation overhead, so published numbers
    should keep the default.
    """
    positions = make_dataset(dataset, n_objects, seed=seed)
    queries = make_queries(n_queries, seed=seed + 1)
    motion = RandomWalkModel(vmax=vmax, seed=seed + 2)
    if instrument and "registry" not in system_kwargs:
        system_kwargs["registry"] = MetricsRegistry()
    system = make_system(method, k, queries, **system_kwargs)
    return measure_cycles(system, positions, motion, cycles=cycles)
