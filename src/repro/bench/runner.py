"""Cycle-timing harness for the reproduction experiments.

The paper's performance metric is the wall-clock time of one monitoring
cycle: index maintenance plus query answering over a snapshot of all object
positions.  :func:`measure_cycles` runs a configured
:class:`~repro.core.monitor.MonitoringSystem` for a number of cycles under
a motion model and reports mean per-cycle times, split exactly the way the
paper splits them (Fig. 11(b): "Index building" vs "Query answering").

Timing records come straight from the engine layer's unified pipeline:
:class:`~repro.engines.base.CycleTiming` is both the per-cycle record and
(via :meth:`~repro.engines.base.CycleTiming.from_history`) the
steady-state summary this module returns.  System construction resolves
through the single engine registry
(:func:`repro.engines.registry.build_system`); the former local
``make_system`` remains as a deprecated alias.
"""

from __future__ import annotations

import warnings
from typing import Callable, Mapping

import numpy as np

from ..core.monitor import MonitoringSystem
from ..engines.base import CycleTiming
from ..engines.registry import BENCH_PRESETS, build_system
from ..errors import ConfigurationError
from ..motion import RandomWalkModel, make_dataset, make_queries
from ..obs.registry import MetricsRegistry

__all__ = [
    "BENCH_PRESETS",
    "METHOD_FACTORIES",
    "CycleTiming",
    "make_system",
    "measure_cycles",
    "measure_method",
]


def measure_cycles(
    system: MonitoringSystem,
    positions: np.ndarray,
    motion,
    cycles: int = 5,
) -> CycleTiming:
    """Run ``cycles`` monitoring cycles and average the timing breakdown.

    ``motion`` is any object with a ``step(positions) -> positions`` method
    (RandomWalkModel, RoadNetworkModel, or a DispersionProcess adapter).
    The initial :meth:`load` is not counted — the paper measures the
    steady-state cycle cost.
    """
    if cycles < 1:
        raise ConfigurationError(f"cycles must be >= 1, got {cycles}")
    current = positions
    system.load(current)
    for _ in range(cycles):
        current = motion.step(current)
        system.tick(current)
    return CycleTiming.from_history(system.history)


def make_system(method: str, k: int, queries: np.ndarray, **kwargs) -> MonitoringSystem:
    """Deprecated alias of :func:`repro.engines.registry.build_system`.

    ``method`` may be a benchmark preset (``object_overhaul``, ...) or any
    bare registry method name (``object_indexing``, ``sharded``, ...);
    keyword arguments override the preset's options.
    """
    warnings.warn(
        "repro.bench.runner.make_system() is deprecated; use "
        "repro.engines.registry.build_system() or MonitoringSystem.create()",
        DeprecationWarning,
        stacklevel=2,
    )
    return build_system(method, k, queries, **kwargs)


class _PresetFactories(Mapping):
    """Read-only ``METHOD_FACTORIES`` view kept for backward compatibility.

    Historic callers index this mapping for a ``(k, queries, **kw)``
    factory; entries now close over :func:`build_system` so every path
    goes through the engine registry.
    """

    def __getitem__(self, method: str) -> Callable[..., MonitoringSystem]:
        if method not in BENCH_PRESETS:
            raise KeyError(method)
        return lambda k, q, **kw: build_system(method, k, q, **kw)

    def __iter__(self):
        return iter(BENCH_PRESETS)

    def __len__(self) -> int:
        return len(BENCH_PRESETS)


METHOD_FACTORIES: Mapping[str, Callable[..., MonitoringSystem]] = _PresetFactories()


def measure_method(
    method: str,
    n_objects: int,
    n_queries: int,
    k: int = 10,
    dataset: str = "uniform",
    vmax: float = 0.005,
    cycles: int = 5,
    seed: int = 7,
    instrument: bool = False,
    **system_kwargs,
) -> CycleTiming:
    """One-call measurement used by the per-figure experiment functions.

    With ``instrument=True`` the system runs with a live
    :class:`~repro.obs.registry.MetricsRegistry` and the returned timing
    carries mean per-cycle counters (spans included).  Timings measured
    this way include the instrumentation overhead, so published numbers
    should keep the default.
    """
    positions = make_dataset(dataset, n_objects, seed=seed)
    queries = make_queries(n_queries, seed=seed + 1)
    motion = RandomWalkModel(vmax=vmax, seed=seed + 2)
    if instrument and "registry" not in system_kwargs:
        system_kwargs["registry"] = MetricsRegistry()
    system = build_system(method, k, queries, **system_kwargs)
    return measure_cycles(system, positions, motion, cycles=cycles)
