"""Benchmark harness: per-figure reproduction experiments."""

from .experiments import EXPERIMENTS, run_experiment
from .results import ExperimentResult, format_table
from .runner import (
    METHOD_FACTORIES,
    CycleTiming,
    make_system,
    measure_cycles,
    measure_method,
)

__all__ = [
    "CycleTiming",
    "EXPERIMENTS",
    "ExperimentResult",
    "METHOD_FACTORIES",
    "format_table",
    "make_system",
    "measure_cycles",
    "measure_method",
    "run_experiment",
]
