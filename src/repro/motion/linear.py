"""Piecewise-linear motion: the model predictive indexes assume.

TPR-tree-style predictive query processing (§2 of the paper) assumes every
object moves with a known constant velocity until it issues an update.
:class:`LinearMotionModel` generates exactly that world: each object
carries a velocity vector; each cycle it advances linearly, reflecting off
the region walls, and with probability ``change_probability`` it draws a
fresh velocity (issuing an "update" in the predictive-index sense).

``change_probability=0`` is the TPR-tree's best case (perfect prediction
forever); ``change_probability=1`` is the paper's adversarial case where
"the velocities of the objects are constantly changing" and the TPR-tree
degenerates to an R-tree (§5.4).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ConfigurationError


class LinearMotionModel:
    """Constant-velocity motion with occasional velocity changes.

    Parameters
    ----------
    n:
        Population size (velocities are per-object state).
    vmax:
        Maximum speed per axis; velocities are drawn uniformly from
        ``[-vmax, vmax]`` per axis.
    change_probability:
        Per-cycle probability that an object redraws its velocity.
    seed:
        Seed for the generator.
    """

    def __init__(
        self,
        n: int,
        vmax: float = 0.005,
        change_probability: float = 0.0,
        seed: Optional[int] = None,
    ) -> None:
        if n < 0:
            raise ConfigurationError(f"n must be >= 0, got {n}")
        if vmax < 0.0:
            raise ConfigurationError(f"vmax must be >= 0, got {vmax}")
        if not 0.0 <= change_probability <= 1.0:
            raise ConfigurationError(
                f"change_probability={change_probability!r} must be in [0, 1]"
            )
        self.n = n
        self.vmax = vmax
        self.change_probability = change_probability
        self._rng = np.random.default_rng(seed)
        self.velocities = self._rng.uniform(-vmax, vmax, size=(n, 2))
        #: IDs whose velocity changed on the most recent step (the update
        #: stream a predictive index would receive).
        self.last_changed: np.ndarray = np.arange(n)

    def step(self, positions: np.ndarray) -> np.ndarray:
        """Advance one cycle; returns the new positions.

        Velocity redraws happen *before* the move, so ``last_changed``
        lists the objects whose stored velocity a predictive index must
        refresh to keep its answers valid for this step.
        """
        positions = np.asarray(positions, dtype=np.float64)
        if len(positions) != self.n:
            raise ConfigurationError(
                f"positions has {len(positions)} rows for a population of {self.n}"
            )
        if self.change_probability > 0.0 and self.n:
            changing = self._rng.random(self.n) < self.change_probability
            n_changing = int(np.count_nonzero(changing))
            if n_changing:
                self.velocities[changing] = self._rng.uniform(
                    -self.vmax, self.vmax, size=(n_changing, 2)
                )
            self.last_changed = np.nonzero(changing)[0]
        else:
            self.last_changed = np.empty(0, dtype=np.intp)
        moved = positions + self.velocities
        # Reflect at the walls, flipping the corresponding velocity so the
        # stored vector stays consistent with the actual motion.
        for axis in range(2):
            low = moved[:, axis] < 0.0
            high = moved[:, axis] >= 1.0
            moved[low, axis] = -moved[low, axis]
            moved[high, axis] = 2.0 * (1.0 - 1e-9) - moved[high, axis]
            flipped = low | high
            self.velocities[flipped, axis] = -self.velocities[flipped, axis]
            if np.any(flipped):
                self.last_changed = np.union1d(
                    self.last_changed, np.nonzero(flipped)[0]
                )
        return np.clip(moved, 0.0, 1.0 - 1e-9)

    def predicted_positions(
        self, positions: np.ndarray, cycles_ahead: float
    ) -> np.ndarray:
        """Linear extrapolation ``p + v * cycles_ahead`` (no reflection).

        This is the world-model a predictive index answers against; it is
        only correct while no velocity changes or wall bounces occur.
        """
        positions = np.asarray(positions, dtype=np.float64)
        return positions + self.velocities * cycles_ahead
