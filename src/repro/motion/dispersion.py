"""Cluster-dispersion process (paper Fig. 21(b)).

The paper demonstrates the hierarchical index's adaptive memory footprint
by "simulating a dispersion of four clusters into uniformly distributed
objects while all the objects remain in the region".  This module provides
that process: every object starts at a clustered position and drifts along
a straight line toward its own uniform target, reaching it at the final
step.  Optional random-walk jitter keeps per-cycle motion realistic.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from ..errors import ConfigurationError
from .datasets import gaussian_clusters_dataset
from .random_walk import reflect_into_unit


class DispersionProcess:
    """Linear interpolation from a clustered start to a uniform end state.

    Parameters
    ----------
    n:
        Population size.
    steps:
        Number of cycles over which the dispersion completes.
    n_clusters, std:
        Initial cluster configuration (defaults match the paper's Fig. 21(b)
        narrative: four clusters).
    jitter:
        Per-cycle uniform jitter amplitude added on top of the drift (0
        disables it).
    """

    def __init__(
        self,
        n: int,
        steps: int,
        n_clusters: int = 4,
        std: float = 0.05,
        jitter: float = 0.0,
        seed: Optional[int] = None,
    ) -> None:
        if steps < 1:
            raise ConfigurationError(f"steps must be >= 1, got {steps}")
        if jitter < 0.0:
            raise ConfigurationError(f"jitter must be >= 0, got {jitter}")
        rng = np.random.default_rng(seed)
        # Derive the two endpoint configurations from independent streams.
        self.start = gaussian_clusters_dataset(
            n,
            n_clusters=n_clusters,
            std=std,
            seed=int(rng.integers(0, 2**31)),
        )
        self.target = rng.random((n, 2))
        self.steps = steps
        self.jitter = jitter
        self._rng = rng

    def positions_at(self, step: int) -> np.ndarray:
        """Snapshot after ``step`` cycles (0 = initial clusters)."""
        if step < 0:
            raise ConfigurationError(f"step must be >= 0, got {step}")
        fraction = min(1.0, step / self.steps)
        points = self.start + (self.target - self.start) * fraction
        if self.jitter > 0.0 and step > 0:
            points = points + self._rng.uniform(
                -self.jitter, self.jitter, size=points.shape
            )
            points = reflect_into_unit(points)
        return np.clip(points, 0.0, 1.0 - 1e-9)

    def snapshots(self) -> Iterator[np.ndarray]:
        """Yield the ``steps + 1`` snapshots from clustered to uniform."""
        for step in range(self.steps + 1):
            yield self.positions_at(step)
