"""Synthetic object-position datasets (paper Fig. 9).

Three distributions with the same population but increasing skew:

* ``uniform``   — i.i.d. uniform over the unit square (Fig. 9(a));
* ``skewed``    — 1% uniform background plus 99% in four Gaussian clusters
  with randomly chosen centers and standard deviation 0.05 (Fig. 9(b));
* ``hi_skewed`` — ten Gaussian clusters with standard deviation 0.02
  (Fig. 9(c)).

Positions are arrays of shape ``(n, 2)`` in ``[0, 1)^2``; the object ID is
the row index.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from ..errors import ConfigurationError

# Keep samples strictly inside the half-open unit square.
_EPS = 1e-9


def _rng(seed: Optional[int]) -> np.random.Generator:
    return np.random.default_rng(seed)


def _clip_unit(points: np.ndarray) -> np.ndarray:
    return np.clip(points, 0.0, 1.0 - _EPS)


def uniform_dataset(n: int, seed: Optional[int] = None) -> np.ndarray:
    """``n`` positions i.i.d. uniform over the unit square."""
    if n < 0:
        raise ConfigurationError(f"n must be >= 0, got {n}")
    return _rng(seed).random((n, 2))


def gaussian_clusters_dataset(
    n: int,
    n_clusters: int,
    std: float,
    uniform_fraction: float = 0.0,
    seed: Optional[int] = None,
) -> np.ndarray:
    """Positions drawn from ``n_clusters`` Gaussians plus a uniform background.

    Cluster centers are sampled uniformly from the central 80% of the square
    so the clusters mostly fit inside; samples are clipped to the region.
    """
    if n < 0:
        raise ConfigurationError(f"n must be >= 0, got {n}")
    if n_clusters < 1:
        raise ConfigurationError(f"n_clusters must be >= 1, got {n_clusters}")
    if not 0.0 <= uniform_fraction <= 1.0:
        raise ConfigurationError(
            f"uniform_fraction={uniform_fraction!r} must be in [0, 1]"
        )
    rng = _rng(seed)
    n_uniform = int(round(n * uniform_fraction))
    n_clustered = n - n_uniform
    centers = 0.1 + 0.8 * rng.random((n_clusters, 2))
    assignment = rng.integers(0, n_clusters, size=n_clustered)
    clustered = centers[assignment] + rng.normal(0.0, std, size=(n_clustered, 2))
    background = rng.random((n_uniform, 2))
    points = np.concatenate([clustered, background], axis=0)
    rng.shuffle(points, axis=0)
    return _clip_unit(points)


def skewed_dataset(n: int, seed: Optional[int] = None) -> np.ndarray:
    """The paper's 'skewed' dataset: 99% in 4 clusters (std 0.05), 1% uniform."""
    return gaussian_clusters_dataset(
        n, n_clusters=4, std=0.05, uniform_fraction=0.01, seed=seed
    )


def hi_skewed_dataset(n: int, seed: Optional[int] = None) -> np.ndarray:
    """The paper's 'highly-skewed' dataset: 10 clusters with std 0.02."""
    return gaussian_clusters_dataset(
        n, n_clusters=10, std=0.02, uniform_fraction=0.0, seed=seed
    )


_DATASETS: Dict[str, Callable[[int, Optional[int]], np.ndarray]] = {
    "uniform": uniform_dataset,
    "skewed": skewed_dataset,
    "hi_skewed": hi_skewed_dataset,
}


def make_dataset(name: str, n: int, seed: Optional[int] = None) -> np.ndarray:
    """Build one of the named paper datasets: uniform / skewed / hi_skewed.

    The ``roadnet`` dataset lives in :mod:`repro.roadnet` because it needs a
    road-network simulation, not a one-shot draw.
    """
    try:
        factory = _DATASETS[name]
    except KeyError:
        known = ", ".join(sorted(_DATASETS))
        raise ConfigurationError(f"unknown dataset {name!r}; known: {known}") from None
    return factory(n, seed)


def make_queries(
    n: int, seed: Optional[int] = None, distribution: str = "uniform"
) -> np.ndarray:
    """Query positions; the paper uses uniformly distributed static queries."""
    if distribution not in _DATASETS:
        known = ", ".join(sorted(_DATASETS))
        raise ConfigurationError(
            f"unknown query distribution {distribution!r}; known: {known}"
        )
    return _DATASETS[distribution](n, seed)


def skewness_statistic(points: np.ndarray, ncells: int = 32) -> float:
    """A scalar skew measure: normalized chi-square of grid-cell occupancy.

    0 for perfectly uniform occupancy; grows with concentration.  Used by
    tests to order the datasets (uniform < roadnet < skewed < hi_skewed)
    the way the paper's Fig. 17 discussion does.
    """
    if len(points) == 0:
        return 0.0
    ii = np.clip((points[:, 0] * ncells).astype(np.intp), 0, ncells - 1)
    jj = np.clip((points[:, 1] * ncells).astype(np.intp), 0, ncells - 1)
    counts = np.bincount(jj * ncells + ii, minlength=ncells * ncells)
    expected = len(points) / (ncells * ncells)
    chi2 = float(np.sum((counts - expected) ** 2) / expected)
    return chi2 / len(points)
