"""The paper's motion model: bounded random displacements.

Between consecutive cycles every object is displaced by ``(u, v)`` with
``u, v`` i.i.d. uniform on ``[-vmax, vmax]`` (§3.2, "Mobility and
index-building").  Objects are kept inside the unit square by one of three
boundary policies; the paper's experiments keep the population constant, so
``reflect`` is the default.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ConfigurationError

_BOUNDARIES = ("reflect", "wrap", "clip")


def reflect_into_unit(points: np.ndarray) -> np.ndarray:
    """Reflect coordinates at the [0, 1] walls (billiard boundary).

    Handles displacements of any magnitude via the period-2 triangle wave.
    """
    folded = np.mod(points, 2.0)
    return np.where(folded > 1.0, 2.0 - folded, folded)


class RandomWalkModel:
    """Stateless-per-object random walk with bounded step size.

    Parameters
    ----------
    vmax:
        Maximum displacement per cycle along each axis (the paper default
        is 0.005 unless a figure sweeps it).
    boundary:
        ``reflect`` (default), ``wrap`` (torus), or ``clip``.
    seed:
        Seed for the internal random generator.
    update_fraction:
        Fraction of objects that move each cycle (default 1.0 — every
        object, the paper's setting).  Lower values model workloads
        where most objects report unchanged positions, the regime the
        ``delta_grid`` engine's patch path and answer reuse target.
    """

    def __init__(
        self,
        vmax: float = 0.005,
        boundary: str = "reflect",
        seed: Optional[int] = None,
        update_fraction: float = 1.0,
    ) -> None:
        if vmax < 0.0:
            raise ConfigurationError(f"vmax must be >= 0, got {vmax}")
        if boundary not in _BOUNDARIES:
            raise ConfigurationError(
                f"boundary must be one of {_BOUNDARIES}, got {boundary!r}"
            )
        if not 0.0 <= update_fraction <= 1.0:
            raise ConfigurationError(
                f"update_fraction must be in [0, 1], got {update_fraction}"
            )
        self.vmax = vmax
        self.boundary = boundary
        self.update_fraction = update_fraction
        self._rng = np.random.default_rng(seed)

    def step(self, positions: np.ndarray) -> np.ndarray:
        """One cycle of motion; returns a new positions array."""
        positions = np.asarray(positions, dtype=np.float64)
        if self.vmax == 0.0 or self.update_fraction == 0.0:
            return positions.copy()
        displaced = positions + self._rng.uniform(
            -self.vmax, self.vmax, size=positions.shape
        )
        if self.update_fraction < 1.0:
            # Drawn *after* the displacements so update_fraction=1.0
            # replays the exact legacy stream for any given seed.
            frozen = self._rng.random(len(positions)) >= self.update_fraction
            displaced[frozen] = positions[frozen]
        if self.boundary == "reflect":
            moved = reflect_into_unit(displaced)
        elif self.boundary == "wrap":
            moved = np.mod(displaced, 1.0)
        else:
            moved = np.clip(displaced, 0.0, 1.0 - 1e-9)
        # Keep strictly inside the half-open square (reflection can land
        # exactly on 1.0).
        return np.clip(moved, 0.0, 1.0 - 1e-9)

    def run(self, positions: np.ndarray, cycles: int):
        """Yield ``cycles`` successive snapshots (not including the input)."""
        current = positions
        for _ in range(cycles):
            current = self.step(current)
            yield current
