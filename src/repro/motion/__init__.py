"""Moving-object datasets and motion models."""

from .datasets import (
    gaussian_clusters_dataset,
    hi_skewed_dataset,
    make_dataset,
    make_queries,
    skewed_dataset,
    skewness_statistic,
    uniform_dataset,
)
from .dispersion import DispersionProcess
from .linear import LinearMotionModel
from .random_walk import RandomWalkModel, reflect_into_unit
from .trace import MotionTrace, TraceReplay

__all__ = [
    "DispersionProcess",
    "LinearMotionModel",
    "MotionTrace",
    "RandomWalkModel",
    "TraceReplay",
    "gaussian_clusters_dataset",
    "hi_skewed_dataset",
    "make_dataset",
    "make_queries",
    "reflect_into_unit",
    "skewed_dataset",
    "skewness_statistic",
    "uniform_dataset",
]
