"""Motion traces: record a simulation once, replay it deterministically.

Benchmark fairness requires every method to see the *same* motion.  A
:class:`MotionTrace` captures the snapshot sequence produced by any motion
model (random walk, road network, dispersion, linear) and replays it as a
drop-in ``step``-compatible source — including to and from ``.npz`` files,
so a workload can be shipped alongside results.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

import numpy as np

from ..errors import ConfigurationError


class MotionTrace:
    """An immutable sequence of position snapshots.

    ``trace[0]`` is the initial configuration; each subsequent snapshot is
    one monitoring cycle later.
    """

    def __init__(self, snapshots: List[np.ndarray]) -> None:
        if not snapshots:
            raise ConfigurationError("a trace needs at least one snapshot")
        arrays = [np.asarray(s, dtype=np.float64) for s in snapshots]
        shape = arrays[0].shape
        if len(shape) != 2 or shape[1] != 2:
            raise ConfigurationError("snapshots must be (n, 2) arrays")
        for snapshot in arrays[1:]:
            if snapshot.shape != shape:
                raise ConfigurationError(
                    "all snapshots in a trace must have the same shape"
                )
        self._snapshots = arrays

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def record(
        cls, initial: np.ndarray, motion, cycles: int
    ) -> "MotionTrace":
        """Drive ``motion.step`` for ``cycles`` cycles and keep everything."""
        if cycles < 0:
            raise ConfigurationError(f"cycles must be >= 0, got {cycles}")
        snapshots = [np.asarray(initial, dtype=np.float64).copy()]
        current = snapshots[0]
        for _ in range(cycles):
            current = motion.step(current)
            snapshots.append(np.asarray(current, dtype=np.float64).copy())
        return cls(snapshots)

    @classmethod
    def load(cls, path: str) -> "MotionTrace":
        """Load a trace previously written with :meth:`save`."""
        with np.load(path) as data:
            count = int(data["count"])
            snapshots = [data[f"snapshot_{i}"] for i in range(count)]
        return cls(snapshots)

    def save(self, path: str) -> None:
        """Write the trace to a compressed ``.npz`` file."""
        arrays = {
            f"snapshot_{i}": snapshot
            for i, snapshot in enumerate(self._snapshots)
        }
        np.savez_compressed(path, count=len(self._snapshots), **arrays)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def cycles(self) -> int:
        """Number of motion steps recorded (snapshots minus one)."""
        return len(self._snapshots) - 1

    @property
    def n_objects(self) -> int:
        return self._snapshots[0].shape[0]

    def __len__(self) -> int:
        return len(self._snapshots)

    def __getitem__(self, index: int) -> np.ndarray:
        return self._snapshots[index]

    def __iter__(self) -> Iterator[np.ndarray]:
        return iter(self._snapshots)

    def replay(self) -> "TraceReplay":
        """A fresh ``step``-compatible replayer over this trace."""
        return TraceReplay(self)


class TraceReplay:
    """Replays a :class:`MotionTrace` through the ``step`` protocol.

    ``step`` ignores its ``positions`` argument (the trace is the truth)
    and raises once the trace is exhausted.
    """

    def __init__(self, trace: MotionTrace) -> None:
        self.trace = trace
        self._cursor = 0

    @property
    def exhausted(self) -> bool:
        return self._cursor >= self.trace.cycles

    def initial(self) -> np.ndarray:
        """The trace's starting configuration."""
        return self.trace[0]

    def step(self, positions: Optional[np.ndarray] = None) -> np.ndarray:
        if self.exhausted:
            raise ConfigurationError(
                f"trace exhausted after {self.trace.cycles} cycles"
            )
        self._cursor += 1
        return self.trace[self._cursor]

    def rewind(self) -> None:
        self._cursor = 0
